#include <memory>

#include "core/recycler_optimizer.h"
#include "util/check.h"
#include "util/str.h"
#include "mal/plan_builder.h"
#include "tpch/tpch.h"

namespace recycledb::tpch {

namespace {

// ---------------------------------------------------------------------------
// Plan-building idioms shared by the 22 templates. They mirror the MAL
// patterns of the paper's Fig. 1: selections produce [row -> value] subsets,
// markT/reverse turn them into dense candidate lists [cand -> row], and
// positional joins (r.head dense) implement column fetches and FK hops.
// ---------------------------------------------------------------------------
class QB {
 public:
  explicit QB(const char* name) : b(name) {}

  /// Candidate list from a selection result [row -> v] => [cand -> row].
  int Recand(int subset) { return b.Recand(subset); }

  /// Renumbers a filtered candidate list [cand -> row] => [cand' -> row]
  /// with a fresh dense head.
  int Rebase(int cand) { return b.Rebase(cand); }

  /// Column fetch: [cand -> row] x [dense row -> val] => [cand -> val].
  int Fetch(int cand, const std::string& tbl, const std::string& col) {
    return b.Join(cand, b.Bind(tbl, col));
  }

  /// FK hop through a join index: [cand -> row] => [cand -> parent row].
  int Hop(int cand, const std::string& tbl, const std::string& idx) {
    return b.Join(cand, b.BindIdx(tbl, idx));
  }

  /// Child rows referencing a qualifying parent row, through the FK join
  /// index (robust against key/row drift after updates):
  /// `parent_subset` is any [parent row -> v] subset.
  /// Returns [child row -> parent row].
  int RowsReferencing(const std::string& tbl, const std::string& idx,
                      int parent_subset) {
    int fkidx = b.BindIdx(tbl, idx);
    int by_parent = b.Reverse(fkidx);  // [parent row -> child row]
    int sem = b.Semijoin(by_parent, parent_subset);
    return b.Reverse(sem);  // [child row -> parent row]
  }

  /// revenue = extendedprice * (1 - discount) for a candidate list.
  int Revenue(int cand) {
    int price = Fetch(cand, "lineitem", "l_extendedprice");
    int disc = Fetch(cand, "lineitem", "l_discount");
    int one_minus = b.Sub(b.ConstDbl(1.0), disc);
    return b.Mul(price, one_minus);
  }

  /// Fetches the group-key values: [gid -> key] via the representatives.
  int GroupKeys(int reps, int keys_bat) { return b.Join(reps, keys_bat); }

  PlanBuilder b;
};

QueryTemplate Finish(int number, QB* q,
                     std::function<std::vector<Scalar>(Rng&)> gen) {
  QueryTemplate t;
  t.number = number;
  t.prog = q->b.Build();
  MarkForRecycling(&t.prog);
  t.gen_params = std::move(gen);
  return t;
}

DateT Ymd(int y, int m, int d) { return DateFromYmd(y, m, d); }

const char* kRegionNames[] = {"AFRICA", "AMERICA", "ASIA", "EUROPE",
                              "MIDDLE EAST"};
const char* kNationNames[] = {
    "ALGERIA", "ARGENTINA", "BRAZIL",  "CANADA",  "EGYPT",   "ETHIOPIA",
    "FRANCE",  "GERMANY",   "INDIA",   "INDONESIA", "IRAN",  "IRAQ",
    "JAPAN",   "JORDAN",    "KENYA",   "MOROCCO", "MOZAMBIQUE", "PERU",
    "CHINA",   "ROMANIA",   "SAUDI ARABIA", "VIETNAM", "RUSSIA",
    "UNITED KINGDOM", "UNITED STATES"};
const char* kSegmentNames[] = {"AUTOMOBILE", "BUILDING", "FURNITURE",
                               "MACHINERY", "HOUSEHOLD"};
const char* kModeNames[] = {"REG AIR", "AIR", "RAIL", "SHIP",
                            "TRUCK",   "MAIL", "FOB"};
const char* kType3[] = {"TIN", "NICKEL", "BRASS", "STEEL", "COPPER"};
const char* kType1[] = {"STANDARD", "SMALL", "MEDIUM",
                        "LARGE",    "ECONOMY", "PROMO"};
const char* kType2[] = {"ANODIZED", "BURNISHED", "PLATED", "POLISHED",
                        "BRUSHED"};
const char* kColors[] = {"green", "blue", "red",  "black", "navy",
                         "azure", "lace", "plum", "ivory", "khaki"};
const char* kW1[] = {"special", "pending", "unusual", "express"};
const char* kW2[] = {"packages", "requests", "accounts", "deposits"};

std::string Brand(Rng& rng) {
  return StrFormat("Brand#%d%d", static_cast<int>(rng.UniformRange(1, 5)),
                   static_cast<int>(rng.UniformRange(1, 5)));
}

// ---------------------------------------------------------------------------
// Q1: pricing summary report. Param: shipdate upper bound.
// ---------------------------------------------------------------------------
QueryTemplate BuildQ1() {
  QB q("q1");
  int a0 = q.b.Param("A0");
  int ship = q.b.Bind("lineitem", "l_shipdate");
  int sel = q.b.Select(ship, q.b.NilConst(TypeTag::kDate), a0, true, true);
  int cand = q.Recand(sel);
  int flag = q.Fetch(cand, "lineitem", "l_returnflag");
  int status = q.Fetch(cand, "lineitem", "l_linestatus");
  auto [m1, r1] = q.b.GroupBy(flag);
  auto [map, reps] = q.b.SubGroupBy(status, m1);
  (void)r1;
  int qty = q.Fetch(cand, "lineitem", "l_quantity");
  int price = q.Fetch(cand, "lineitem", "l_extendedprice");
  int disc = q.Fetch(cand, "lineitem", "l_discount");
  int tax = q.Fetch(cand, "lineitem", "l_tax");
  int disc_price = q.b.Mul(price, q.b.Sub(q.b.ConstDbl(1.0), disc));
  int charge = q.b.Mul(disc_price, q.b.Add(q.b.ConstDbl(1.0), tax));
  q.b.ExportBat(q.GroupKeys(reps, flag), "returnflag");
  q.b.ExportBat(q.GroupKeys(reps, status), "linestatus");
  q.b.ExportBat(q.b.GrpSum(qty, map, reps), "sum_qty");
  q.b.ExportBat(q.b.GrpSum(price, map, reps), "sum_base_price");
  q.b.ExportBat(q.b.GrpSum(disc_price, map, reps), "sum_disc_price");
  q.b.ExportBat(q.b.GrpSum(charge, map, reps), "sum_charge");
  q.b.ExportBat(q.b.GrpAvg(qty, map, reps), "avg_qty");
  q.b.ExportBat(q.b.GrpAvg(price, map, reps), "avg_price");
  q.b.ExportBat(q.b.GrpAvg(disc, map, reps), "avg_disc");
  q.b.ExportBat(q.b.GrpCount(qty, map, reps), "count_order");
  return Finish(1, &q, [](Rng& rng) {
    int delta = static_cast<int>(rng.UniformRange(60, 120));
    return std::vector<Scalar>{Scalar::DateVal(Ymd(1998, 12, 1) - delta)};
  });
}

// ---------------------------------------------------------------------------
// Q2: minimum-cost supplier. Params: size, type suffix, region.
// ---------------------------------------------------------------------------
QueryTemplate BuildQ2() {
  QB q("q2");
  int a_size = q.b.Param("A0");
  int a_type = q.b.Param("A1");
  int a_region = q.b.Param("A2");
  // parts of the requested size & type
  int psel = q.b.Uselect(q.b.Bind("part", "p_size"), a_size);
  int pcand = q.Recand(psel);
  int ptype = q.Fetch(pcand, "part", "p_type");
  int tsel = q.b.LikeSelect(ptype, a_type);
  int pcand2 = q.Rebase(q.b.Semijoin(pcand, tsel));  // [pc -> part row]
  // suppliers in the region
  int rsel = q.b.Uselect(q.b.Bind("region", "r_name"), a_region);
  int nat = q.RowsReferencing("nation", "nation_region", rsel);
  int supp = q.RowsReferencing("supplier", "supp_nation", nat);
  // partsupp rows of both
  int ps_by_part = q.RowsReferencing("partsupp", "ps_part",
                                     q.b.Reverse(pcand2));
  int ps_by_supp = q.RowsReferencing("partsupp", "ps_supp", supp);
  int ps = q.b.Semijoin(ps_by_part, ps_by_supp);
  int cand = q.Recand(ps);
  int cost = q.Fetch(cand, "partsupp", "ps_supplycost");
  int pk = q.Fetch(cand, "partsupp", "ps_partkey");
  auto [map, reps] = q.b.GroupBy(pk);
  int mins = q.b.GrpMin(cost, map, reps);
  q.b.ExportBat(q.GroupKeys(reps, pk), "p_partkey");
  q.b.ExportBat(mins, "min_supplycost");
  q.b.ExportValue(q.b.AggrCount(mins), "groups");
  return Finish(2, &q, [](Rng& rng) {
    return std::vector<Scalar>{
        Scalar::Int(static_cast<int32_t>(rng.UniformRange(1, 50))),
        Scalar::Str(std::string("%") +
                    kType3[rng.Uniform(sizeof(kType3) / sizeof(kType3[0]))]),
        Scalar::Str(
            kRegionNames[rng.Uniform(sizeof(kRegionNames) /
                                     sizeof(kRegionNames[0]))])};
  });
}

// ---------------------------------------------------------------------------
// Q3: shipping priority. Params: segment, date.
// ---------------------------------------------------------------------------
QueryTemplate BuildQ3() {
  QB q("q3");
  int a_seg = q.b.Param("A0");
  int a_date = q.b.Param("A1");
  int csel = q.b.Uselect(q.b.Bind("customer", "c_mktsegment"), a_seg);
  int osel = q.b.Select(q.b.Bind("orders", "o_orderdate"),
                        q.b.NilConst(TypeTag::kDate), a_date, true, false);
  // orders of those customers (through the ord_cust join index)
  int of = q.RowsReferencing("orders", "ord_cust", csel);
  int orders = q.b.Semijoin(osel, of);  // [ord row -> date]
  // their lineitems, shipped after the date
  int li = q.RowsReferencing("lineitem", "li_orders", orders);
  int lcand = q.Recand(li);
  int ship = q.Fetch(lcand, "lineitem", "l_shipdate");
  int ssel = q.b.Select(ship, a_date, q.b.NilConst(TypeTag::kDate), false,
                        true);
  int lcand2 = q.Rebase(q.b.Semijoin(lcand, ssel));
  int rev = q.Revenue(lcand2);
  int okey = q.Fetch(lcand2, "lineitem", "l_orderkey");
  auto [map, reps] = q.b.GroupBy(okey);
  int sums = q.b.GrpSum(rev, map, reps);
  int sorted = q.b.SortTail(sums);
  q.b.ExportBat(q.b.SliceN(sorted, 0, 10), "revenue_top");
  q.b.ExportBat(q.GroupKeys(reps, okey), "l_orderkey");
  return Finish(3, &q, [](Rng& rng) {
    return std::vector<Scalar>{
        Scalar::Str(kSegmentNames[rng.Uniform(5)]),
        Scalar::DateVal(Ymd(1995, 3, 1) +
                        static_cast<int>(rng.UniformRange(0, 30)))};
  });
}

// ---------------------------------------------------------------------------
// Q4: order priority checking. Param: quarter start. The late-lineitem
// detection (commitdate < receiptdate) is parameter independent, giving the
// large inter-query reuse Table II reports.
// ---------------------------------------------------------------------------
QueryTemplate BuildQ4() {
  QB q("q4");
  int a0 = q.b.Param("A0");
  int hi = q.b.AddMonths(a0, q.b.ConstInt(3));
  int osel = q.b.Select(q.b.Bind("orders", "o_orderdate"), a0, hi, true,
                        false);
  // parameter-independent: orders with a late lineitem
  int lt = q.b.CmpLt(q.b.Bind("lineitem", "l_commitdate"),
                     q.b.Bind("lineitem", "l_receiptdate"));
  int late = q.b.Uselect(lt, q.b.ConstBit(true));
  int lcand = q.Recand(late);
  int orow = q.Hop(lcand, "lineitem", "li_orders");     // [c -> ord row]
  int distinct = q.b.Kunique(q.b.Reverse(orow));        // [ord row -> c]
  // orders in range with exists(late lineitem)
  int qual = q.b.Semijoin(osel, distinct);              // [ord row -> date]
  int ocand2 = q.Recand(qual);
  int prio = q.Fetch(ocand2, "orders", "o_orderpriority");
  auto [map, reps] = q.b.GroupBy(prio);
  q.b.ExportBat(q.GroupKeys(reps, prio), "o_orderpriority");
  q.b.ExportBat(q.b.GrpCount(prio, map, reps), "order_count");
  return Finish(4, &q, [](Rng& rng) {
    int y = static_cast<int>(rng.UniformRange(1993, 1997));
    int m = static_cast<int>(rng.UniformRange(1, 10));
    return std::vector<Scalar>{Scalar::DateVal(Ymd(y, m, 1))};
  });
}

// ---------------------------------------------------------------------------
// Q5: local supplier volume. Params: region, year.
// ---------------------------------------------------------------------------
QueryTemplate BuildQ5() {
  QB q("q5");
  int a_region = q.b.Param("A0");
  int a_date = q.b.Param("A1");
  int rsel = q.b.Uselect(q.b.Bind("region", "r_name"), a_region);
  int nat = q.b.Reverse(
      q.b.Semijoin(q.b.Reverse(q.b.Bind("nation", "n_regionkey")), rsel));
  int hi = q.b.AddMonths(a_date, q.b.ConstInt(12));
  int osel = q.b.Select(q.b.Bind("orders", "o_orderdate"), a_date, hi, true,
                        false);
  int li = q.RowsReferencing("lineitem", "li_orders", osel);
  int lcand = q.Recand(li);
  int snat = q.b.Join(q.Hop(lcand, "lineitem", "li_supp"),
                      q.b.Bind("supplier", "s_nationkey"));
  // keep lineitems whose supplier nation lies in the region
  int innat = q.b.Reverse(q.b.Semijoin(q.b.Reverse(snat), nat));
  int lcand2 = q.Rebase(q.b.Semijoin(lcand, innat));
  int nkey = q.b.Join(q.Hop(lcand2, "lineitem", "li_supp"),
                      q.b.Bind("supplier", "s_nationkey"));
  int nname = q.b.Join(nkey, q.b.Bind("nation", "n_name"));
  int rev = q.Revenue(lcand2);
  auto [map, reps] = q.b.GroupBy(nname);
  q.b.ExportBat(q.GroupKeys(reps, nname), "n_name");
  q.b.ExportBat(q.b.GrpSum(rev, map, reps), "revenue");
  return Finish(5, &q, [](Rng& rng) {
    int y = static_cast<int>(rng.UniformRange(1993, 1997));
    return std::vector<Scalar>{Scalar::Str(kRegionNames[rng.Uniform(5)]),
                               Scalar::DateVal(Ymd(y, 1, 1))};
  });
}

// ---------------------------------------------------------------------------
// Q6: forecasting revenue change. Params: year, discount band, quantity.
// Fully parameter dependent: the classic no-reuse query.
// ---------------------------------------------------------------------------
QueryTemplate BuildQ6() {
  QB q("q6");
  int a_date = q.b.Param("A0");
  int a_dlo = q.b.Param("A1");
  int a_dhi = q.b.Param("A2");
  int a_qty = q.b.Param("A3");
  int hi = q.b.AddMonths(a_date, q.b.ConstInt(12));
  int ssel = q.b.Select(q.b.Bind("lineitem", "l_shipdate"), a_date, hi, true,
                        false);
  int cand = q.Recand(ssel);
  int disc = q.Fetch(cand, "lineitem", "l_discount");
  int dsel = q.b.Select(disc, a_dlo, a_dhi, true, true);
  int cand2 = q.Rebase(q.b.Semijoin(cand, dsel));
  int qty = q.Fetch(cand2, "lineitem", "l_quantity");
  int qsel = q.b.Select(qty, q.b.NilConst(TypeTag::kInt), a_qty, true, false);
  int cand3 = q.Rebase(q.b.Semijoin(cand2, qsel));
  int price = q.Fetch(cand3, "lineitem", "l_extendedprice");
  int disc3 = q.Fetch(cand3, "lineitem", "l_discount");
  q.b.ExportValue(q.b.AggrSum(q.b.Mul(price, disc3)), "revenue");
  return Finish(6, &q, [](Rng& rng) {
    int y = static_cast<int>(rng.UniformRange(1993, 1997));
    double d = rng.UniformRange(2, 9) / 100.0;
    return std::vector<Scalar>{
        Scalar::DateVal(Ymd(y, 1, 1)), Scalar::Dbl(d - 0.01),
        Scalar::Dbl(d + 0.01),
        Scalar::Int(static_cast<int32_t>(rng.UniformRange(24, 25)))};
  });
}

// ---------------------------------------------------------------------------
// Q7: volume shipping. Params: two nations. The 1995-1996 shipdate window is
// constant, hence parameter independent.
// ---------------------------------------------------------------------------
QueryTemplate BuildQ7() {
  QB q("q7");
  int a_n1 = q.b.Param("A0");
  int a_n2 = q.b.Param("A1");
  int ssel = q.b.Select(q.b.Bind("lineitem", "l_shipdate"),
                        q.b.ConstDate(Ymd(1995, 1, 1)),
                        q.b.ConstDate(Ymd(1996, 12, 31)), true, true);
  int cand = q.Recand(ssel);
  int sname = q.b.Join(q.b.Join(q.Hop(cand, "lineitem", "li_supp"),
                                q.b.Bind("supplier", "s_nationkey")),
                       q.b.Bind("nation", "n_name"));
  int cname = q.b.Join(
      q.b.Join(q.b.Join(q.Hop(cand, "lineitem", "li_orders"),
                        q.b.Bind("orders", "o_custkey")),
               q.b.Bind("customer", "c_nationkey")),
      q.b.Bind("nation", "n_name"));
  // direction 1: supp in n1, cust in n2
  int d1 = q.Rebase(q.b.Semijoin(q.b.Semijoin(cand, q.b.Uselect(sname, a_n1)),
                                 q.b.Uselect(cname, a_n2)));
  int y1 = q.b.Year(q.Fetch(d1, "lineitem", "l_shipdate"));
  auto [m1, r1] = q.b.GroupBy(y1);
  q.b.ExportBat(q.GroupKeys(r1, y1), "year_1");
  q.b.ExportBat(q.b.GrpSum(q.Revenue(d1), m1, r1), "volume_1");
  // direction 2: supp in n2, cust in n1
  int d2 = q.Rebase(q.b.Semijoin(q.b.Semijoin(cand, q.b.Uselect(sname, a_n2)),
                                 q.b.Uselect(cname, a_n1)));
  int y2 = q.b.Year(q.Fetch(d2, "lineitem", "l_shipdate"));
  auto [m2, r2] = q.b.GroupBy(y2);
  q.b.ExportBat(q.GroupKeys(r2, y2), "year_2");
  q.b.ExportBat(q.b.GrpSum(q.Revenue(d2), m2, r2), "volume_2");
  return Finish(7, &q, [](Rng& rng) {
    int n1 = static_cast<int>(rng.Uniform(25));
    int n2 = static_cast<int>((n1 + 1 + rng.Uniform(24)) % 25);
    return std::vector<Scalar>{Scalar::Str(kNationNames[n1]),
                               Scalar::Str(kNationNames[n2])};
  });
}

// ---------------------------------------------------------------------------
// Q8: national market share. Params: region, part type.
// ---------------------------------------------------------------------------
QueryTemplate BuildQ8() {
  QB q("q8");
  int a_region = q.b.Param("A0");
  int a_type = q.b.Param("A1");
  // parameter independent: orders placed in 1995-1996
  int osel = q.b.Select(q.b.Bind("orders", "o_orderdate"),
                        q.b.ConstDate(Ymd(1995, 1, 1)),
                        q.b.ConstDate(Ymd(1996, 12, 31)), true, true);
  int li = q.RowsReferencing("lineitem", "li_orders", osel);
  int lcand = q.Recand(li);
  int ptype = q.b.Join(q.Hop(lcand, "lineitem", "li_part"),
                       q.b.Bind("part", "p_type"));
  int tsel = q.b.Uselect(ptype, a_type);
  int lcand2 = q.Rebase(q.b.Semijoin(lcand, tsel));
  // customer region filter
  int rname = q.b.Join(
      q.b.Join(q.b.Join(q.b.Join(q.Hop(lcand2, "lineitem", "li_orders"),
                                 q.b.Bind("orders", "o_custkey")),
                        q.b.Bind("customer", "c_nationkey")),
               q.b.Bind("nation", "n_regionkey")),
      q.b.Bind("region", "r_name"));
  int rsel = q.b.Uselect(rname, a_region);
  int lcand3 = q.Rebase(q.b.Semijoin(lcand2, rsel));
  int year = q.b.Year(q.b.Join(q.Hop(lcand3, "lineitem", "li_orders"),
                               q.b.Bind("orders", "o_orderdate")));
  int rev = q.Revenue(lcand3);
  auto [map, reps] = q.b.GroupBy(year);
  q.b.ExportBat(q.GroupKeys(reps, year), "o_year");
  q.b.ExportBat(q.b.GrpSum(rev, map, reps), "volume");
  return Finish(8, &q, [](Rng& rng) {
    std::string type = std::string(kType1[rng.Uniform(6)]) + " " +
                       kType2[rng.Uniform(5)] + " " + kType3[rng.Uniform(5)];
    return std::vector<Scalar>{Scalar::Str(kRegionNames[rng.Uniform(5)]),
                               Scalar::Str(type)};
  });
}

// ---------------------------------------------------------------------------
// Q9: product type profit. Param: part-name colour pattern.
// ---------------------------------------------------------------------------
QueryTemplate BuildQ9() {
  QB q("q9");
  int a_color = q.b.Param("A0");
  int psel = q.b.LikeSelect(q.b.Bind("part", "p_name"), a_color);
  int li = q.RowsReferencing("lineitem", "li_part", psel);
  int lcand = q.Recand(li);
  int nname = q.b.Join(q.b.Join(q.Hop(lcand, "lineitem", "li_supp"),
                                q.b.Bind("supplier", "s_nationkey")),
                       q.b.Bind("nation", "n_name"));
  int year = q.b.Year(q.b.Join(q.Hop(lcand, "lineitem", "li_orders"),
                               q.b.Bind("orders", "o_orderdate")));
  int amount = q.Revenue(lcand);
  auto [m1, r1] = q.b.GroupBy(nname);
  auto [map, reps] = q.b.SubGroupBy(year, m1);
  (void)r1;
  q.b.ExportBat(q.GroupKeys(reps, nname), "nation");
  q.b.ExportBat(q.GroupKeys(reps, year), "o_year");
  q.b.ExportBat(q.b.GrpSum(amount, map, reps), "sum_profit");
  return Finish(9, &q, [](Rng& rng) {
    return std::vector<Scalar>{
        Scalar::Str(std::string("%") + kColors[rng.Uniform(10)] + "%")};
  });
}

// ---------------------------------------------------------------------------
// Q10: returned item reporting. Param: quarter start.
// ---------------------------------------------------------------------------
QueryTemplate BuildQ10() {
  QB q("q10");
  int a0 = q.b.Param("A0");
  int hi = q.b.AddMonths(a0, q.b.ConstInt(3));
  int osel = q.b.Select(q.b.Bind("orders", "o_orderdate"), a0, hi, true,
                        false);
  int li = q.RowsReferencing("lineitem", "li_orders", osel);
  int lcand = q.Recand(li);
  int flag = q.Fetch(lcand, "lineitem", "l_returnflag");
  int fsel = q.b.Uselect(flag, q.b.ConstStr("R"));
  int lcand2 = q.Rebase(q.b.Semijoin(lcand, fsel));
  int cust = q.b.Join(q.Hop(lcand2, "lineitem", "li_orders"),
                      q.b.Bind("orders", "o_custkey"));
  int rev = q.Revenue(lcand2);
  auto [map, reps] = q.b.GroupBy(cust);
  int sums = q.b.GrpSum(rev, map, reps);
  int names = q.b.Join(q.GroupKeys(reps, cust), q.b.Bind("customer", "c_name"));
  int sorted = q.b.SortTail(sums);
  q.b.ExportBat(q.b.SliceN(sorted, 0, 20), "revenue");
  q.b.ExportBat(names, "c_name");
  return Finish(10, &q, [](Rng& rng) {
    int y = static_cast<int>(rng.UniformRange(1993, 1994));
    int m = static_cast<int>(rng.UniformRange(1, 12));
    return std::vector<Scalar>{Scalar::DateVal(Ymd(y, m, 1))};
  });
}

// ---------------------------------------------------------------------------
// Q11: important stock identification. Params: nation, fraction.
// The SQL repeats the partsupp-supplier-nation join + value computation in
// the HAVING subquery; the plan deliberately duplicates that thread, which
// is the intra-query commonality Table II reports (33%).
// ---------------------------------------------------------------------------
QueryTemplate BuildQ11() {
  QB q("q11");
  int a_nation = q.b.Param("A0");
  int a_frac = q.b.Param("A1");

  auto subplan = [&](int* cand_out, int* value_out) {
    int nsel = q.b.Uselect(q.b.Bind("nation", "n_name"), a_nation);
    int supp = q.RowsReferencing("supplier", "supp_nation", nsel);
    int ps = q.RowsReferencing("partsupp", "ps_supp", supp);
    int cand = q.Recand(ps);
    int cost = q.Fetch(cand, "partsupp", "ps_supplycost");
    int qty = q.Fetch(cand, "partsupp", "ps_availqty");
    *cand_out = cand;
    *value_out = q.b.Mul(cost, qty);
  };

  int cand1, value1;
  subplan(&cand1, &value1);
  int pk = q.Fetch(cand1, "partsupp", "ps_partkey");
  auto [map, reps] = q.b.GroupBy(pk);
  int sums = q.b.GrpSum(value1, map, reps);

  // HAVING subquery: the same thread recomputed (reused locally).
  int cand2, value2;
  subplan(&cand2, &value2);
  (void)cand2;
  int total = q.b.AggrSum(value2);
  int bound = q.b.ScalarMul(total, a_frac);

  int hot = q.b.Select(sums, bound, q.b.NilConst(TypeTag::kDbl), false, true);
  int hot_cand = q.Recand(hot);
  int keys = q.b.Join(hot_cand, q.GroupKeys(reps, pk));
  q.b.ExportBat(keys, "ps_partkey");
  q.b.ExportBat(hot, "value");
  return Finish(11, &q, [](Rng& rng) {
    return std::vector<Scalar>{
        Scalar::Str(kNationNames[rng.Uniform(25)]),
        Scalar::Dbl(rng.UniformDouble(0.002, 0.01))};
  });
}

// ---------------------------------------------------------------------------
// Q12: shipping mode & order priority. Params: two modes, year.
// The commit/receipt/ship date comparisons are parameter independent.
// ---------------------------------------------------------------------------
QueryTemplate BuildQ12() {
  QB q("q12");
  int a_m1 = q.b.Param("A0");
  int a_m2 = q.b.Param("A1");
  int a_date = q.b.Param("A2");
  int hi = q.b.AddMonths(a_date, q.b.ConstInt(12));
  int modes = q.b.Bind("lineitem", "l_shipmode");
  int rsel = q.b.Select(q.b.Bind("lineitem", "l_receiptdate"), a_date, hi,
                        true, false);
  // parameter-independent threads
  int ok1 = q.b.Uselect(q.b.CmpLt(q.b.Bind("lineitem", "l_commitdate"),
                                  q.b.Bind("lineitem", "l_receiptdate")),
                        q.b.ConstBit(true));
  int ok2 = q.b.Uselect(q.b.CmpLt(q.b.Bind("lineitem", "l_shipdate"),
                                  q.b.Bind("lineitem", "l_commitdate")),
                        q.b.ConstBit(true));
  auto branch = [&](int mode_param, const char* suffix) {
    int msel = q.b.Uselect(modes, mode_param);
    int both = q.b.Semijoin(q.b.Semijoin(q.b.Semijoin(msel, rsel), ok1), ok2);
    int cand = q.Recand(both);
    int prio = q.b.Join(q.Hop(cand, "lineitem", "li_orders"),
                        q.b.Bind("orders", "o_orderpriority"));
    int urgent = q.b.Uselect(prio, q.b.ConstStr("1-URGENT"));
    int high = q.b.Uselect(prio, q.b.ConstStr("2-HIGH"));
    q.b.ExportValue(q.b.AggrCount(urgent), std::string("urgent_") + suffix);
    q.b.ExportValue(q.b.AggrCount(high), std::string("high_") + suffix);
    q.b.ExportValue(q.b.AggrCount(prio), std::string("all_") + suffix);
  };
  branch(a_m1, "1");
  branch(a_m2, "2");
  return Finish(12, &q, [](Rng& rng) {
    int m1 = static_cast<int>(rng.Uniform(7));
    int m2 = static_cast<int>((m1 + 1 + rng.Uniform(6)) % 7);
    int y = static_cast<int>(rng.UniformRange(1993, 1997));
    return std::vector<Scalar>{Scalar::Str(kModeNames[m1]),
                               Scalar::Str(kModeNames[m2]),
                               Scalar::DateVal(Ymd(y, 1, 1))};
  });
}

// ---------------------------------------------------------------------------
// Q13: customer distribution. Param: comment pattern.
// ---------------------------------------------------------------------------
QueryTemplate BuildQ13() {
  QB q("q13");
  int a_pat = q.b.Param("A0");
  int comments = q.b.Bind("orders", "o_comment");
  int excluded = q.b.LikeSelect(comments, a_pat);
  int custkeys = q.b.Bind("orders", "o_custkey");
  int keep = q.b.AntiSemijoin(custkeys, excluded);
  auto [map, reps] = q.b.GroupBy(keep);
  int counts = q.b.GrpCount(keep, map, reps);  // orders per customer
  auto [m2, r2] = q.b.GroupBy(counts);
  q.b.ExportBat(q.GroupKeys(r2, counts), "c_count");
  q.b.ExportBat(q.b.GrpCount(counts, m2, r2), "custdist");
  return Finish(13, &q, [](Rng& rng) {
    return std::vector<Scalar>{
        Scalar::Str(std::string("%") + kW1[rng.Uniform(4)] + "%" +
                    kW2[rng.Uniform(4)] + "%")};
  });
}

// ---------------------------------------------------------------------------
// Q14: promotion effect. Param: month. Instances barely overlap: the
// recycler-overhead counter-example of Fig. 5b.
// ---------------------------------------------------------------------------
QueryTemplate BuildQ14() {
  QB q("q14");
  int a0 = q.b.Param("A0");
  int hi = q.b.AddMonths(a0, q.b.ConstInt(1));
  int ssel = q.b.Select(q.b.Bind("lineitem", "l_shipdate"), a0, hi, true,
                        false);
  int cand = q.Recand(ssel);
  int ptype = q.b.Join(q.Hop(cand, "lineitem", "li_part"),
                       q.b.Bind("part", "p_type"));
  int promo = q.b.LikeSelect(ptype, q.b.ConstStr("PROMO%"));
  int rev = q.Revenue(cand);
  int promo_rev = q.b.Semijoin(rev, promo);
  q.b.ExportValue(q.b.AggrSum(promo_rev), "promo_revenue");
  q.b.ExportValue(q.b.AggrSum(rev), "total_revenue");
  return Finish(14, &q, [](Rng& rng) {
    int y = static_cast<int>(rng.UniformRange(1993, 1997));
    int m = static_cast<int>(rng.UniformRange(1, 12));
    return std::vector<Scalar>{Scalar::DateVal(Ymd(y, m, 1))};
  });
}

// ---------------------------------------------------------------------------
// Q15: top supplier. Param: quarter start.
// ---------------------------------------------------------------------------
QueryTemplate BuildQ15() {
  QB q("q15");
  int a0 = q.b.Param("A0");
  int hi = q.b.AddMonths(a0, q.b.ConstInt(3));
  int ssel = q.b.Select(q.b.Bind("lineitem", "l_shipdate"), a0, hi, true,
                        false);
  int cand = q.Recand(ssel);
  int supp = q.Fetch(cand, "lineitem", "l_suppkey");
  int rev = q.Revenue(cand);
  auto [map, reps] = q.b.GroupBy(supp);
  int sums = q.b.GrpSum(rev, map, reps);
  int mx = q.b.AggrMax(sums);
  int best = q.b.Uselect(sums, mx);
  int bcand = q.Recand(best);
  int bkeys = q.b.Join(bcand, q.GroupKeys(reps, supp));
  int names = q.b.Join(bkeys, q.b.Bind("supplier", "s_name"));
  q.b.ExportBat(names, "s_name");
  q.b.ExportBat(best, "total_revenue");
  return Finish(15, &q, [](Rng& rng) {
    int y = static_cast<int>(rng.UniformRange(1993, 1997));
    int m = 1 + 3 * static_cast<int>(rng.Uniform(4));
    return std::vector<Scalar>{Scalar::DateVal(Ymd(y, m, 1))};
  });
}

// ---------------------------------------------------------------------------
// Q16: parts/supplier relationship. Params: brand, type pattern, size band.
// The complained-about-suppliers scan is constant: strong inter reuse.
// ---------------------------------------------------------------------------
QueryTemplate BuildQ16() {
  QB q("q16");
  int a_brand = q.b.Param("A0");
  int a_type = q.b.Param("A1");
  int a_szlo = q.b.Param("A2");
  int a_szhi = q.b.Param("A3");
  // parameter independent: suppliers with complaints
  int complaints = q.b.LikeSelect(q.b.Bind("supplier", "s_comment"),
                             q.b.ConstStr("%Customer%Complaints%"));
  int bsel = q.b.AntiUselect(q.b.Bind("part", "p_brand"), a_brand);
  int tsel = q.b.LikeSelect(q.b.Bind("part", "p_type"), a_type);
  int szsel = q.b.Select(q.b.Bind("part", "p_size"), a_szlo, a_szhi, true,
                         true);
  int parts = q.b.Semijoin(q.b.Semijoin(bsel, tsel), szsel);
  int ps = q.RowsReferencing("partsupp", "ps_part", parts);
  int cand = q.Recand(ps);
  int sk = q.b.Join(q.Hop(cand, "partsupp", "ps_supp"),
                    q.b.Bind("supplier", "s_suppkey"));
  int good = q.b.Reverse(q.b.AntiSemijoin(q.b.Reverse(sk), complaints));
  int cand2 = q.Rebase(q.b.Semijoin(cand, good));
  int prow = q.Hop(cand2, "partsupp", "ps_part");
  int brand = q.b.Join(prow, q.b.Bind("part", "p_brand"));
  int type = q.b.Join(prow, q.b.Bind("part", "p_type"));
  int size = q.b.Join(prow, q.b.Bind("part", "p_size"));
  auto [m1, r1] = q.b.GroupBy(brand);
  auto [m2, r2] = q.b.SubGroupBy(type, m1);
  auto [map, reps] = q.b.SubGroupBy(size, m2);
  (void)r1;
  (void)r2;
  q.b.ExportBat(q.GroupKeys(reps, brand), "p_brand");
  q.b.ExportBat(q.GroupKeys(reps, type), "p_type");
  q.b.ExportBat(q.GroupKeys(reps, size), "p_size");
  q.b.ExportBat(q.b.GrpCount(size, map, reps), "supplier_cnt");
  return Finish(16, &q, [](Rng& rng) {
    int lo = static_cast<int>(rng.UniformRange(1, 40));
    return std::vector<Scalar>{
        Scalar::Str(Brand(rng)),
        Scalar::Str(std::string(kType1[rng.Uniform(6)]) + " " +
                    kType2[rng.Uniform(5)] + "%"),
        Scalar::Int(lo), Scalar::Int(lo + 9)};
  });
}

// ---------------------------------------------------------------------------
// Q17: small-quantity-order revenue. Params: brand, container.
// ---------------------------------------------------------------------------
QueryTemplate BuildQ17() {
  QB q("q17");
  int a_brand = q.b.Param("A0");
  int a_cont = q.b.Param("A1");
  int bsel = q.b.Uselect(q.b.Bind("part", "p_brand"), a_brand);
  int csel = q.b.Uselect(q.b.Bind("part", "p_container"), a_cont);
  int parts = q.b.Semijoin(bsel, csel);
  int li = q.RowsReferencing("lineitem", "li_part", parts);
  int lcand = q.Recand(li);
  int qty = q.Fetch(lcand, "lineitem", "l_quantity");
  int pk = q.Fetch(lcand, "lineitem", "l_partkey");
  auto [map, reps] = q.b.GroupBy(pk);
  int avgq = q.b.GrpAvg(qty, map, reps);
  int thr = q.b.Mul(avgq, q.b.ConstDbl(0.2));
  int thr_row = q.b.Join(map, thr);  // positional: per-row threshold
  int qty_d = q.b.Mul(qty, q.b.ConstDbl(1.0));  // widen int -> dbl
  int small = q.b.Uselect(q.b.CmpLt(qty_d, thr_row), q.b.ConstBit(true));
  int price = q.Fetch(lcand, "lineitem", "l_extendedprice");
  int chosen = q.b.Semijoin(price, small);
  int total = q.b.AggrSum(chosen);
  q.b.ExportValue(q.b.ScalarMul(total, q.b.ConstDbl(1.0 / 7.0)),
                  "avg_yearly");
  return Finish(17, &q, [](Rng& rng) {
    const char* c1[] = {"SM", "LG", "MED", "JUMBO", "WRAP"};
    const char* c2[] = {"CASE", "BOX", "BAG", "JAR",
                        "PKG",  "PACK", "CAN", "DRUM"};
    return std::vector<Scalar>{
        Scalar::Str(Brand(rng)),
        Scalar::Str(std::string(c1[rng.Uniform(5)]) + " " +
                    c2[rng.Uniform(8)])};
  });
}

// ---------------------------------------------------------------------------
// Q18: large volume customer. Param: quantity threshold. The grouping and
// aggregation over lineitem is parameter independent — the paper's flagship
// inter-query reuse case (75%, Fig. 4b).
// ---------------------------------------------------------------------------
QueryTemplate BuildQ18() {
  QB q("q18");
  int a0 = q.b.Param("A0");
  // parameter independent: total quantity per order
  int okeys = q.b.Bind("lineitem", "l_orderkey");
  auto [map, reps] = q.b.GroupBy(okeys);
  int qty = q.b.Bind("lineitem", "l_quantity");
  int sums = q.b.GrpSum(qty, map, reps);
  // parameter dependent remainder
  int sel = q.b.Select(sums, a0, q.b.NilConst(TypeTag::kLng), false, true);
  int cand = q.Recand(sel);
  int gkeys = q.GroupKeys(reps, okeys);
  int sel_keys = q.b.Join(cand, gkeys);  // [x -> orderkey]
  // key -> row mapping survives row drift after updates
  int orows = q.b.Join(sel_keys, q.b.Reverse(q.b.Bind("orders", "o_orderkey")));
  int total = q.b.Join(orows, q.b.Bind("orders", "o_totalprice"));
  int odate = q.b.Join(orows, q.b.Bind("orders", "o_orderdate"));
  int cname = q.b.Join(q.b.Join(orows, q.b.Bind("orders", "o_custkey")),
                       q.b.Bind("customer", "c_name"));
  q.b.ExportBat(sel_keys, "o_orderkey");
  q.b.ExportBat(total, "o_totalprice");
  q.b.ExportBat(odate, "o_orderdate");
  q.b.ExportBat(cname, "c_name");
  q.b.ExportBat(sel, "sum_quantity");
  return Finish(18, &q, [](Rng& rng) {
    return std::vector<Scalar>{
        Scalar::Lng(static_cast<int64_t>(rng.UniformRange(300, 315)))};
  });
}

// ---------------------------------------------------------------------------
// Q19: discounted revenue, three OR'd predicate branches. Params: brand and
// quantity band per branch. Each branch re-evaluates the constant
// shipinstruct/shipmode selections: intra + inter commonality (Fig. 5a).
// ---------------------------------------------------------------------------
QueryTemplate BuildQ19() {
  QB q("q19");
  int a_brand[3] = {q.b.Param("A0"), q.b.Param("A1"), q.b.Param("A2")};
  int a_qlo[3] = {q.b.Param("A3"), q.b.Param("A4"), q.b.Param("A5")};
  int a_qhi[3] = {q.b.Param("A6"), q.b.Param("A7"), q.b.Param("A8")};
  const char* containers[3] = {"SM%", "MED%", "LG%"};

  int total_vars[3];
  for (int i = 0; i < 3; ++i) {
    // constant sub-thread, re-evaluated per branch as the SQL compiler does
    int instr = q.b.Uselect(q.b.Bind("lineitem", "l_shipinstruct"),
                            q.b.ConstStr("DELIVER IN PERSON"));
    int air = q.b.Uselect(q.b.Bind("lineitem", "l_shipmode"),
                          q.b.ConstStr("AIR"));
    int base = q.b.Semijoin(instr, air);
    // parameterised part filter
    int bsel = q.b.Uselect(q.b.Bind("part", "p_brand"), a_brand[i]);
    int cont = q.b.LikeSelect(q.b.Bind("part", "p_container"),
                              q.b.ConstStr(containers[i]));
    int parts = q.b.Semijoin(bsel, cont);
    int li = q.RowsReferencing("lineitem", "li_part", parts);
    int both = q.b.Semijoin(li, base);
    int cand = q.Recand(both);
    int qty = q.Fetch(cand, "lineitem", "l_quantity");
    int qsel = q.b.Select(qty, a_qlo[i], a_qhi[i], true, true);
    int cand2 = q.Rebase(q.b.Semijoin(cand, qsel));
    total_vars[i] = q.b.AggrSum(q.Revenue(cand2));
  }
  q.b.ExportValue(total_vars[0], "revenue_1");
  q.b.ExportValue(total_vars[1], "revenue_2");
  q.b.ExportValue(total_vars[2], "revenue_3");
  return Finish(19, &q, [](Rng& rng) {
    std::vector<Scalar> p;
    for (int i = 0; i < 3; ++i) p.push_back(Scalar::Str(Brand(rng)));
    int qlo[3];
    for (int i = 0; i < 3; ++i) {
      qlo[i] = static_cast<int>(rng.UniformRange(1, 10 * (i + 1)));
      p.push_back(Scalar::Int(qlo[i]));
    }
    for (int i = 0; i < 3; ++i) p.push_back(Scalar::Int(qlo[i] + 10));
    return p;
  });
}

// ---------------------------------------------------------------------------
// Q20: potential part promotion. Params: colour prefix, year, nation.
// ---------------------------------------------------------------------------
QueryTemplate BuildQ20() {
  QB q("q20");
  int a_color = q.b.Param("A0");
  int a_date = q.b.Param("A1");
  int a_nation = q.b.Param("A2");
  int psel = q.b.LikeSelect(q.b.Bind("part", "p_name"), a_color);
  // quantity shipped per selected part within the year
  int hi = q.b.AddMonths(a_date, q.b.ConstInt(12));
  int li = q.RowsReferencing("lineitem", "li_part", psel);
  int ssel = q.b.Select(q.b.Bind("lineitem", "l_shipdate"), a_date, hi, true,
                        false);
  int li2 = q.b.Semijoin(li, ssel);
  int lcand = q.Recand(li2);
  int lqty = q.Fetch(lcand, "lineitem", "l_quantity");
  int lpk = q.Fetch(lcand, "lineitem", "l_partkey");
  auto [map, reps] = q.b.GroupBy(lpk);
  int half = q.b.Mul(q.b.GrpSum(lqty, map, reps), q.b.ConstDbl(0.5));
  int gkeys = q.GroupKeys(reps, lpk);  // [gid -> partkey]
  // partsupp rows of the selected parts, availqty > half of shipped
  int ps = q.RowsReferencing("partsupp", "ps_part", psel);
  int cand = q.Recand(ps);
  int pspk = q.Fetch(cand, "partsupp", "ps_partkey");
  int gid = q.b.Join(pspk, q.b.Reverse(gkeys));  // [c -> gid]
  int thr = q.b.Join(gid, half);
  int avail = q.Fetch(cand, "partsupp", "ps_availqty");
  // align: avail is [c -> qty] over all candidate rows; thr only covers rows
  // whose part shipped this year. Restrict avail to those rows first.
  int avail2 = q.b.Semijoin(avail, gid);
  int avail_d = q.b.Mul(avail2, q.b.ConstDbl(1.0));  // widen int -> dbl
  int cmp = q.b.CmpGt(avail_d, thr);
  int sel = q.b.Uselect(cmp, q.b.ConstBit(true));
  int sk = q.Fetch(cand, "partsupp", "ps_suppkey");
  int sk2 = q.b.Semijoin(sk, sel);
  // nation filter
  int nsel = q.b.Uselect(q.b.Bind("nation", "n_name"), a_nation);
  int snat = q.RowsReferencing("supplier", "supp_nation", nsel);
  int in_nation = q.b.Semijoin(q.b.Reverse(sk2), snat);  // [suppkey -> c]
  int distinct = q.b.Kunique(in_nation);
  int ncand = q.Recand(distinct);
  int names = q.b.Join(ncand, q.b.Bind("supplier", "s_name"));
  q.b.ExportBat(names, "s_name");
  q.b.ExportValue(q.b.AggrCount(names), "supplier_count");
  return Finish(20, &q, [](Rng& rng) {
    int y = static_cast<int>(rng.UniformRange(1993, 1997));
    return std::vector<Scalar>{
        Scalar::Str(std::string(kColors[rng.Uniform(10)]) + "%"),
        Scalar::DateVal(Ymd(y, 1, 1)),
        Scalar::Str(kNationNames[rng.Uniform(25)])};
  });
}

// ---------------------------------------------------------------------------
// Q21: suppliers who kept orders waiting. Param: nation. The late-lineitem
// and F-order threads are parameter independent.
// ---------------------------------------------------------------------------
QueryTemplate BuildQ21() {
  QB q("q21");
  int a_nation = q.b.Param("A0");
  // parameter independent: late lineitems on finished orders
  int late = q.b.Uselect(q.b.CmpGt(q.b.Bind("lineitem", "l_receiptdate"),
                                   q.b.Bind("lineitem", "l_commitdate")),
                         q.b.ConstBit(true));
  int fsel = q.b.Uselect(q.b.Bind("orders", "o_orderstatus"),
                         q.b.ConstStr("F"));
  int lidx = q.b.Reverse(q.b.BindIdx("lineitem", "li_orders"));
  int li_f = q.b.Reverse(q.b.Semijoin(lidx, fsel));  // [l_row -> ord row]
  int lateF = q.b.Semijoin(late, li_f);
  // parameter dependent: suppliers of the nation
  int nsel = q.b.Uselect(q.b.Bind("nation", "n_name"), a_nation);
  int snat = q.RowsReferencing("supplier", "supp_nation", nsel);
  int cand = q.Recand(lateF);
  int srow = q.Hop(cand, "lineitem", "li_supp");  // [c -> supp row]
  int in_nation = q.b.Reverse(q.b.Semijoin(q.b.Reverse(srow), snat));
  auto [map, reps] = q.b.GroupBy(in_nation);
  int cnt = q.b.GrpCount(in_nation, map, reps);
  int names = q.b.Join(q.GroupKeys(reps, in_nation),
                       q.b.Bind("supplier", "s_name"));
  int sorted = q.b.SortTail(cnt);
  q.b.ExportBat(names, "s_name");
  q.b.ExportBat(q.b.SliceN(sorted, 0, 100), "numwait");
  return Finish(21, &q, [](Rng& rng) {
    return std::vector<Scalar>{Scalar::Str(kNationNames[rng.Uniform(25)])};
  });
}

// ---------------------------------------------------------------------------
// Q22: global sales opportunity. Params: phone country-code band. The
// average-balance subquery is constant: strong inter reuse (75%).
// ---------------------------------------------------------------------------
QueryTemplate BuildQ22() {
  QB q("q22");
  int a_lo = q.b.Param("A0");
  int a_hi = q.b.Param("A1");
  int cc = q.b.Bind("customer", "c_phone_cc");
  int csel = q.b.Select(cc, a_lo, a_hi, true, true);
  // parameter independent: average positive account balance
  int bal = q.b.Bind("customer", "c_acctbal");
  int pos = q.b.Select(bal, q.b.ConstDbl(0.0), q.b.NilConst(TypeTag::kDbl),
                       false, true);
  int avg = q.b.AggrAvg(pos);
  int rich = q.b.Select(bal, avg, q.b.NilConst(TypeTag::kDbl), false, true);
  int sel2 = q.b.Semijoin(csel, rich);
  // customers without orders (through the ord_cust index: [cust row -> ...])
  int haveord = q.b.Reverse(q.b.BindIdx("orders", "ord_cust"));
  int noord = q.b.AntiSemijoin(sel2, haveord);
  int cand = q.Recand(noord);
  int ccv = q.b.Join(cand, cc);
  int balv = q.b.Join(cand, bal);
  auto [map, reps] = q.b.GroupBy(ccv);
  q.b.ExportBat(q.GroupKeys(reps, ccv), "cntrycode");
  q.b.ExportBat(q.b.GrpCount(balv, map, reps), "numcust");
  q.b.ExportBat(q.b.GrpSum(balv, map, reps), "totacctbal");
  return Finish(22, &q, [](Rng& rng) {
    int lo = static_cast<int>(rng.UniformRange(10, 30));
    return std::vector<Scalar>{Scalar::Int(lo), Scalar::Int(lo + 4)};
  });
}

}  // namespace

QueryTemplate BuildQuery(int qnum) {
  switch (qnum) {
    case 1: return BuildQ1();
    case 2: return BuildQ2();
    case 3: return BuildQ3();
    case 4: return BuildQ4();
    case 5: return BuildQ5();
    case 6: return BuildQ6();
    case 7: return BuildQ7();
    case 8: return BuildQ8();
    case 9: return BuildQ9();
    case 10: return BuildQ10();
    case 11: return BuildQ11();
    case 12: return BuildQ12();
    case 13: return BuildQ13();
    case 14: return BuildQ14();
    case 15: return BuildQ15();
    case 16: return BuildQ16();
    case 17: return BuildQ17();
    case 18: return BuildQ18();
    case 19: return BuildQ19();
    case 20: return BuildQ20();
    case 21: return BuildQ21();
    case 22: return BuildQ22();
    default:
      RDB_CHECK(false);
  }
  return QueryTemplate{};
}

std::vector<QueryTemplate> BuildAllQueries() {
  std::vector<QueryTemplate> out;
  out.reserve(22);
  for (int i = 1; i <= 22; ++i) out.push_back(BuildQuery(i));
  return out;
}

}  // namespace recycledb::tpch
