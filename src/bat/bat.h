#ifndef RECYCLEDB_BAT_BAT_H_
#define RECYCLEDB_BAT_BAT_H_

#include <atomic>
#include <memory>
#include <string>

#include "bat/column.h"

namespace recycledb {

class Bat;
using BatPtr = std::shared_ptr<const Bat>;

/// One side (head or tail) of a binary association table. A side is either
///  - dense: a virtual oid sequence `seq, seq+1, ...` with no storage, or
///  - materialised: a (possibly view-sliced) reference into a Column.
///
/// Views (offset/length slices) are how zero-cost operations — `reverse`,
/// `mirror`, `markT`, and range selects over sorted columns — "materialise a
/// new viewpoint over the underlying data structures" (paper §2.2) without
/// copying.
struct BatSide {
  ColumnPtr col;      // nullptr => dense void side
  Oid seq = 0;        // dense base, valid iff col == nullptr
  size_t offset = 0;  // view offset into col
  TypeTag type = TypeTag::kVoid;

  bool dense() const { return col == nullptr; }

  static BatSide Dense(Oid base) {
    BatSide s;
    s.seq = base;
    s.type = TypeTag::kVoid;
    return s;
  }
  static BatSide Materialized(ColumnPtr c, size_t offset = 0) {
    BatSide s;
    s.type = c->type();
    s.col = std::move(c);
    s.offset = offset;
    return s;
  }

  /// Logical type seen by operators: dense sides read as oid.
  TypeTag LogicalType() const {
    return dense() ? TypeTag::kOid : type;
  }

  /// Whether this side is sorted ascending over the view window.
  bool Sorted(size_t count) const {
    if (dense()) return true;
    if (col->sorted()) return true;
    (void)count;
    return false;
  }
};

/// Binary Association Table: an ordered sequence of (head, tail) pairs.
/// This is the only collection type the relational kernel operates on;
/// every operator consumes BATs and produces a fully materialised BAT
/// (possibly a zero-copy viewpoint).
///
/// BATs are immutable; identity (`id()`) is used by the recycler to match
/// intermediate arguments by provenance.
class Bat {
 public:
  Bat(BatSide head, BatSide tail, size_t count);

  /// [dense(hseq) -> column]: the standard persistent/intermediate layout.
  static BatPtr DenseHead(ColumnPtr tail, Oid hseq = 0);

  /// [dense(hseq) -> dense(tseq)] of length n.
  static BatPtr DenseDense(Oid hseq, Oid tseq, size_t n);

  /// Arbitrary sides.
  static BatPtr Make(BatSide head, BatSide tail, size_t count);

  size_t size() const { return count_; }
  const BatSide& head() const { return head_; }
  const BatSide& tail() const { return tail_; }

  /// Unique id for provenance-based matching in the recycle pool.
  uint64_t id() const { return id_; }

  /// Boxed element access (slow path).
  Scalar HeadAt(size_t i) const { return SideAt(head_, i); }
  Scalar TailAt(size_t i) const { return SideAt(tail_, i); }

  /// Bytes of freshly materialised storage reachable from this BAT. Views
  /// over larger columns, dense sides, and persistent columns count as 0 —
  /// matching the paper's stance that viewpoint ops are zero-cost.
  size_t MemoryBytes() const;

  /// Debug/table rendering (first `max_rows` pairs).
  std::string ToString(size_t max_rows = 16) const;

  Scalar SideAt(const BatSide& s, size_t i) const;

 private:
  BatSide head_, tail_;
  size_t count_;
  uint64_t id_;

  static std::atomic<uint64_t> next_id_;
};

/// Typed reader over a materialised side: `reader[i]` is pair i's value.
template <typename T>
class SideReader {
 public:
  SideReader(const BatSide& side, size_t /*count*/)
      : data_(side.col->Data<T>().data() + side.offset) {}

  const T& operator[](size_t i) const { return data_[i]; }

 private:
  const T* data_;
};

}  // namespace recycledb

#endif  // RECYCLEDB_BAT_BAT_H_
