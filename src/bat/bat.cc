#include "bat/bat.h"

#include <sstream>

#include "util/check.h"

namespace recycledb {

std::atomic<uint64_t> Bat::next_id_{1};

Bat::Bat(BatSide head, BatSide tail, size_t count)
    : head_(std::move(head)),
      tail_(std::move(tail)),
      count_(count),
      id_(next_id_.fetch_add(1, std::memory_order_relaxed)) {
  if (!head_.dense()) RDB_CHECK(head_.offset + count_ <= head_.col->size());
  if (!tail_.dense()) RDB_CHECK(tail_.offset + count_ <= tail_.col->size());
}

BatPtr Bat::DenseHead(ColumnPtr tail, Oid hseq) {
  size_t n = tail->size();
  return std::make_shared<Bat>(BatSide::Dense(hseq),
                               BatSide::Materialized(std::move(tail)), n);
}

BatPtr Bat::DenseDense(Oid hseq, Oid tseq, size_t n) {
  return std::make_shared<Bat>(BatSide::Dense(hseq), BatSide::Dense(tseq), n);
}

BatPtr Bat::Make(BatSide head, BatSide tail, size_t count) {
  return std::make_shared<Bat>(std::move(head), std::move(tail), count);
}

Scalar Bat::SideAt(const BatSide& s, size_t i) const {
  RDB_CHECK(i < count_);
  if (s.dense()) return Scalar::OidVal(s.seq + i);
  return s.col->GetScalar(s.offset + i);
}

namespace {

size_t SideOwnedBytes(const BatSide& s, size_t count) {
  if (s.dense()) return 0;
  if (s.col->persistent()) return 0;
  // A view over a strictly larger column is borrowed storage.
  if (s.offset != 0 || count != s.col->size()) return 0;
  return s.col->MemoryBytes();
}

}  // namespace

size_t Bat::MemoryBytes() const {
  size_t bytes = SideOwnedBytes(head_, count_);
  // mirror-style bats share one column on both sides; count it once.
  if (!head_.dense() && !tail_.dense() && head_.col == tail_.col)
    return bytes;
  return bytes + SideOwnedBytes(tail_, count_);
}

std::string Bat::ToString(size_t max_rows) const {
  std::ostringstream os;
  os << "bat[:" << TypeName(head_.LogicalType()) << ",:"
     << TypeName(tail_.LogicalType()) << "] #" << count_ << " {";
  size_t n = count_ < max_rows ? count_ : max_rows;
  for (size_t i = 0; i < n; ++i) {
    if (i) os << ", ";
    os << HeadAt(i).ToString() << "->" << TailAt(i).ToString();
  }
  if (count_ > n) os << ", ...";
  os << "}";
  return os.str();
}

}  // namespace recycledb
