#ifndef RECYCLEDB_BAT_ENCODING_H_
#define RECYCLEDB_BAT_ENCODING_H_

#include <cstdint>
#include <limits>
#include <memory>
#include <string>
#include <variant>
#include <vector>

#include "bat/types.h"

namespace recycledb {

class ColumnEncoding;
using EncodingPtr = std::shared_ptr<const ColumnEncoding>;

/// Lightweight column encodings the execution kernels can process without
/// decompressing (MorphStore-style on-the-fly compressed processing):
///
///  - kFor: frame-of-reference for integer physical types (int32/int64/oid,
///    including the logical date type). Values are stored as unsigned codes
///    `v - base` in the narrowest of u8/u16/u32 that fits the value range;
///    the maximum code of the width is reserved as the in-band nil marker.
///    Range selects translate their bounds into code space once and scan
///    the codes directly.
///  - kDict: dictionary for strings. The distinct values live in a (shared)
///    dictionary in first-occurrence order; rows store fixed-width codes.
///    LIKE/equality/range predicates are evaluated once per distinct
///    dictionary value and then mapped over the codes.
///
/// An encoding is immutable and hangs off a Column either as a sidecar next
/// to raw storage (persistent columns, see Catalog::BuildEncodings) or as
/// the column's only representation (encoded-native intermediates, which
/// decode lazily on first raw access — Column::Data).
class ColumnEncoding {
 public:
  enum class Kind { kFor, kDict };

  using Codes = std::variant<std::vector<uint8_t>, std::vector<uint16_t>,
                             std::vector<uint32_t>>;

  /// Reserved nil code for width CodeT (codes above kMaxCode never occur
  /// for real values).
  template <typename CodeT>
  static constexpr CodeT NilCode() {
    return std::numeric_limits<CodeT>::max();
  }

  Kind kind() const { return kind_; }
  size_t size() const;

  /// Heap bytes owned by this encoding: the code array, plus the dictionary
  /// when this encoding introduced it (TryDict). Gathered dictionary
  /// encodings share the source dictionary and charge only their codes —
  /// the viewpoint stance the pool already takes for column views.
  size_t MemoryBytes() const;

  /// Heap bytes the decoded raw representation would occupy; the spread
  /// between this and MemoryBytes() is the pool's encoding saving.
  size_t RawBytes() const { return raw_bytes_; }

  // --- kFor ------------------------------------------------------------
  /// Frame of reference; value = base + code. For oid columns the base is
  /// the bit-cast minimum (encoding is refused for oids >= 2^63).
  int64_t base() const { return base_; }

  // --- kDict -----------------------------------------------------------
  const std::vector<std::string>& dict() const { return *dict_; }
  const std::shared_ptr<const std::vector<std::string>>& shared_dict() const {
    return dict_;
  }

  template <typename F>
  decltype(auto) VisitCodes(F&& f) const {
    return std::visit(std::forward<F>(f), codes_);
  }

  /// Builds a FOR encoding over an integer vector, or null when no code
  /// width narrower than sizeof(T) fits the non-nil value range. T is one
  /// of int32_t, int64_t, Oid.
  template <typename T>
  static EncodingPtr TryFor(const std::vector<T>& vals);

  /// Builds a dictionary encoding over a string vector, or null when the
  /// distinct count exceeds `max_distinct` or the codes would not be
  /// narrower than the raw strings.
  static EncodingPtr TryDict(const std::vector<std::string>& vals,
                             size_t max_distinct = 1u << 16);

  /// Gathers `sel` positions (relative to `offset`) out of `src` into a new
  /// encoding with the same base/width/dictionary. The dictionary is shared,
  /// not copied.
  static EncodingPtr Gather(const ColumnEncoding& src, size_t offset,
                            const std::vector<uint32_t>& sel);

  /// Decodes into raw physical storage for `type` (the lazy-decode path of
  /// encoded-native columns).
  template <typename T>
  void DecodeTo(std::vector<T>* out) const;
  void DecodeStrings(std::vector<std::string>* out) const;

  ColumnEncoding(Kind kind, Codes codes, int64_t base,
                 std::shared_ptr<const std::vector<std::string>> dict,
                 bool owns_dict, size_t raw_bytes);

 private:
  Kind kind_;
  Codes codes_;
  int64_t base_ = 0;
  std::shared_ptr<const std::vector<std::string>> dict_;
  bool owns_dict_ = false;
  size_t raw_bytes_ = 0;
};

/// Process-wide switch for producing encoded-native *intermediates*: when
/// on, gathers out of encoded source columns (TakeSide) keep the compressed
/// form instead of materialising raw values, so pool entries are charged at
/// their encoded size. Off by default — every existing byte-accounting
/// invariant is preserved unless a server/bench opts in.
bool EncodedIntermediatesEnabled();
void SetEncodedIntermediates(bool on);

}  // namespace recycledb

#endif  // RECYCLEDB_BAT_ENCODING_H_
