#include "bat/scalar.h"

#include <functional>

#include "util/check.h"
#include "util/str.h"

namespace recycledb {

Scalar Scalar::Nil(TypeTag t) {
  switch (t) {
    case TypeTag::kBit:
      return Scalar(t, NilOf<int8_t>());
    case TypeTag::kInt:
    case TypeTag::kDate:
      return Scalar(t, NilOf<int32_t>());
    case TypeTag::kLng:
      return Scalar(t, NilOf<int64_t>());
    case TypeTag::kDbl:
      return Scalar(t, NilOf<double>());
    case TypeTag::kOid:
      return Scalar(t, NilOf<Oid>());
    case TypeTag::kStr:
      return Scalar(t, std::string());
    case TypeTag::kVoid:
      return Scalar();
  }
  return Scalar();
}

bool Scalar::is_nil() const {
  switch (tag_) {
    case TypeTag::kVoid:
      return true;
    case TypeTag::kBit:
      return IsNil(std::get<int8_t>(v_));
    case TypeTag::kInt:
    case TypeTag::kDate:
      return IsNil(std::get<int32_t>(v_));
    case TypeTag::kLng:
      return IsNil(std::get<int64_t>(v_));
    case TypeTag::kDbl:
      return IsNil(std::get<double>(v_));
    case TypeTag::kOid:
      return IsNil(std::get<Oid>(v_));
    case TypeTag::kStr:
      return std::get<std::string>(v_).empty();
  }
  return true;
}

double Scalar::ToDouble() const {
  switch (tag_) {
    case TypeTag::kBit:
      return static_cast<double>(std::get<int8_t>(v_));
    case TypeTag::kInt:
    case TypeTag::kDate:
      return static_cast<double>(std::get<int32_t>(v_));
    case TypeTag::kLng:
      return static_cast<double>(std::get<int64_t>(v_));
    case TypeTag::kDbl:
      return std::get<double>(v_);
    case TypeTag::kOid:
      return static_cast<double>(std::get<Oid>(v_));
    default:
      RDB_UNREACHABLE();
  }
}

int64_t Scalar::ToInt64() const {
  switch (tag_) {
    case TypeTag::kBit:
      return std::get<int8_t>(v_);
    case TypeTag::kInt:
    case TypeTag::kDate:
      return std::get<int32_t>(v_);
    case TypeTag::kLng:
      return std::get<int64_t>(v_);
    case TypeTag::kDbl:
      return static_cast<int64_t>(std::get<double>(v_));
    case TypeTag::kOid:
      return static_cast<int64_t>(std::get<Oid>(v_));
    default:
      RDB_UNREACHABLE();
  }
}

bool Scalar::operator==(const Scalar& o) const {
  return tag_ == o.tag_ && v_ == o.v_;
}

int Scalar::Compare(const Scalar& o) const {
  RDB_CHECK(v_.index() == o.v_.index());
  if (v_ < o.v_) return -1;
  if (o.v_ < v_) return 1;
  return 0;
}

size_t Scalar::Hash() const {
  size_t h = static_cast<size_t>(tag_) * 0x9e3779b97f4a7c15ULL;
  auto mix = [&h](size_t x) {
    h ^= x + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
  };
  switch (tag_) {
    case TypeTag::kVoid:
      break;
    case TypeTag::kBit:
      mix(std::hash<int8_t>()(std::get<int8_t>(v_)));
      break;
    case TypeTag::kInt:
    case TypeTag::kDate:
      mix(std::hash<int32_t>()(std::get<int32_t>(v_)));
      break;
    case TypeTag::kLng:
      mix(std::hash<int64_t>()(std::get<int64_t>(v_)));
      break;
    case TypeTag::kDbl:
      mix(std::hash<double>()(std::get<double>(v_)));
      break;
    case TypeTag::kOid:
      mix(std::hash<Oid>()(std::get<Oid>(v_)));
      break;
    case TypeTag::kStr:
      mix(std::hash<std::string>()(std::get<std::string>(v_)));
      break;
  }
  return h;
}

std::string Scalar::ToString() const {
  if (tag_ == TypeTag::kVoid) return "void-nil";
  if (is_nil()) return "nil";
  switch (tag_) {
    case TypeTag::kBit:
      return AsBit() ? "true" : "false";
    case TypeTag::kInt:
      return StrFormat("%d", AsInt());
    case TypeTag::kLng:
      return StrFormat("%lld", static_cast<long long>(AsLng()));
    case TypeTag::kDbl:
      return StrFormat("%.6g", AsDbl());
    case TypeTag::kOid:
      return StrFormat("%llu@0", static_cast<unsigned long long>(AsOid()));
    case TypeTag::kDate:
      return DateToString(AsDate());
    case TypeTag::kStr:
      return "\"" + AsStr() + "\"";
    default:
      return "?";
  }
}

}  // namespace recycledb
