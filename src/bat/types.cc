#include "bat/types.h"

namespace recycledb {

const char* TypeName(TypeTag t) {
  switch (t) {
    case TypeTag::kVoid:
      return "void";
    case TypeTag::kBit:
      return "bit";
    case TypeTag::kInt:
      return "int";
    case TypeTag::kLng:
      return "lng";
    case TypeTag::kDbl:
      return "dbl";
    case TypeTag::kOid:
      return "oid";
    case TypeTag::kDate:
      return "date";
    case TypeTag::kStr:
      return "str";
  }
  return "?";
}

}  // namespace recycledb
