#include "bat/column.h"

#include <algorithm>

#include "util/check.h"

namespace recycledb {

namespace {

struct SizeVisitor {
  template <typename T>
  size_t operator()(const std::vector<T>& v) const {
    return v.size();
  }
};

struct MemVisitor {
  template <typename T>
  size_t operator()(const std::vector<T>& v) const {
    return v.capacity() * sizeof(T);
  }
  size_t operator()(const std::vector<std::string>& v) const {
    size_t bytes = v.capacity() * sizeof(std::string);
    for (const auto& s : v) bytes += s.capacity();
    return bytes;
  }
};

}  // namespace

Column::Column(TypeTag type, Storage storage)
    : type_(type), storage_(std::move(storage)) {
  mem_bytes_ = std::visit(MemVisitor{}, storage_);
}

std::shared_ptr<Column> Column::MakeEncoded(TypeTag type, EncodingPtr enc) {
  auto col = std::make_shared<Column>(type, Storage{});
  col->encoding_ = std::move(enc);
  col->native_ = true;
  col->mem_bytes_ = col->encoding_->MemoryBytes();
  return col;
}

void Column::AttachEncoding(EncodingPtr enc) {
  RDB_CHECK(!native_ && enc != nullptr && enc->size() == size());
  encoding_ = std::move(enc);
}

void Column::DecodeSlow() const {
  std::call_once(decode_once_, [this] {
    switch (type_) {
      case TypeTag::kInt:
      case TypeTag::kDate: {
        std::vector<int32_t> v;
        encoding_->DecodeTo(&v);
        storage_ = std::move(v);
        break;
      }
      case TypeTag::kLng: {
        std::vector<int64_t> v;
        encoding_->DecodeTo(&v);
        storage_ = std::move(v);
        break;
      }
      case TypeTag::kOid: {
        std::vector<Oid> v;
        encoding_->DecodeTo(&v);
        storage_ = std::move(v);
        break;
      }
      case TypeTag::kStr: {
        std::vector<std::string> v;
        encoding_->DecodeStrings(&v);
        storage_ = std::move(v);
        break;
      }
      default:
        RDB_UNREACHABLE();
    }
    decoded_.store(true, std::memory_order_release);
  });
}

size_t Column::size() const {
  if (native_) return encoding_->size();
  return std::visit(SizeVisitor{}, storage_);
}

Scalar Column::GetScalar(size_t i) const {
  RDB_CHECK(i < size());
  switch (type_) {
    case TypeTag::kBit:
      return Scalar::Bit(Data<int8_t>()[i] != 0);
    case TypeTag::kInt:
      return Scalar::Int(Data<int32_t>()[i]);
    case TypeTag::kDate:
      return Scalar::DateVal(Data<int32_t>()[i]);
    case TypeTag::kLng:
      return Scalar::Lng(Data<int64_t>()[i]);
    case TypeTag::kDbl:
      return Scalar::Dbl(Data<double>()[i]);
    case TypeTag::kOid:
      return Scalar::OidVal(Data<Oid>()[i]);
    case TypeTag::kStr:
      return Scalar::Str(Data<std::string>()[i]);
    case TypeTag::kVoid:
      break;
  }
  RDB_UNREACHABLE();
}

void Column::ComputeSorted() {
  if (native_) DecodeSlow();
  sorted_ = std::visit(
      [](const auto& v) { return std::is_sorted(v.begin(), v.end()); },
      storage_);
}

}  // namespace recycledb
