#include "bat/column.h"

#include <algorithm>

#include "util/check.h"

namespace recycledb {

namespace {

struct SizeVisitor {
  template <typename T>
  size_t operator()(const std::vector<T>& v) const {
    return v.size();
  }
};

struct MemVisitor {
  template <typename T>
  size_t operator()(const std::vector<T>& v) const {
    return v.capacity() * sizeof(T);
  }
  size_t operator()(const std::vector<std::string>& v) const {
    size_t bytes = v.capacity() * sizeof(std::string);
    for (const auto& s : v) bytes += s.capacity();
    return bytes;
  }
};

}  // namespace

Column::Column(TypeTag type, Storage storage)
    : type_(type), storage_(std::move(storage)) {
  mem_bytes_ = std::visit(MemVisitor{}, storage_);
}

size_t Column::size() const { return std::visit(SizeVisitor{}, storage_); }

Scalar Column::GetScalar(size_t i) const {
  RDB_CHECK(i < size());
  switch (type_) {
    case TypeTag::kBit:
      return Scalar::Bit(Data<int8_t>()[i] != 0);
    case TypeTag::kInt:
      return Scalar::Int(Data<int32_t>()[i]);
    case TypeTag::kDate:
      return Scalar::DateVal(Data<int32_t>()[i]);
    case TypeTag::kLng:
      return Scalar::Lng(Data<int64_t>()[i]);
    case TypeTag::kDbl:
      return Scalar::Dbl(Data<double>()[i]);
    case TypeTag::kOid:
      return Scalar::OidVal(Data<Oid>()[i]);
    case TypeTag::kStr:
      return Scalar::Str(Data<std::string>()[i]);
    case TypeTag::kVoid:
      break;
  }
  RDB_UNREACHABLE();
}

void Column::ComputeSorted() {
  sorted_ = std::visit(
      [](const auto& v) { return std::is_sorted(v.begin(), v.end()); },
      storage_);
}

}  // namespace recycledb
