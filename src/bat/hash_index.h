#ifndef RECYCLEDB_BAT_HASH_INDEX_H_
#define RECYCLEDB_BAT_HASH_INDEX_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "bat/types.h"

namespace recycledb {

/// Chained hash table over a typed value array, mapping value -> positions.
/// This is the "hash-structures for fast key look-up" companion of a BAT
/// (paper §2.1); hash joins and semijoins build one over the inner side.
///
/// Buckets store 1-based chain heads; `next_[i]` links positions with equal
/// hash. Nil values are never inserted (nil never matches in joins).
template <typename T>
class HashIndexT {
 public:
  HashIndexT(const T* data, size_t n) : next_(n, 0) {
    size_t cap = 16;
    while (cap < n * 2) cap <<= 1;
    buckets_.assign(cap, 0);
    mask_ = cap - 1;
    for (size_t i = 0; i < n; ++i) {
      if (IsNil(data[i])) continue;
      size_t b = std::hash<T>()(data[i]) & mask_;
      next_[i] = buckets_[b];
      buckets_[b] = static_cast<uint32_t>(i + 1);
    }
    data_ = data;
  }

  /// Visits every position whose value equals `key` (reverse insertion
  /// order). `fn(pos)` may return void.
  template <typename Fn>
  void ForEachMatch(const T& key, Fn&& fn) const {
    if (IsNil(key)) return;
    size_t b = std::hash<T>()(key) & mask_;
    for (uint32_t p = buckets_[b]; p != 0; p = next_[p - 1]) {
      if (data_[p - 1] == key) fn(p - 1);
    }
  }

  /// True iff `key` occurs at least once.
  bool Contains(const T& key) const {
    bool found = false;
    ForEachMatch(key, [&](uint32_t) { found = true; });
    return found;
  }

  /// First (lowest) matching position or SIZE_MAX.
  size_t FindFirst(const T& key) const {
    size_t best = SIZE_MAX;
    ForEachMatch(key, [&](uint32_t p) {
      if (p < best) best = p;
    });
    return best;
  }

  // Decomposed probe steps for the batched kernels (engine/vec/hashprobe.h):
  // hash a whole batch of keys first, prefetch the bucket heads, then walk
  // the chains — same chain order as ForEachMatch.
  size_t BucketOf(const T& key) const { return std::hash<T>()(key) & mask_; }
  uint32_t Head(size_t bucket) const { return buckets_[bucket]; }
  uint32_t Next(uint32_t pos) const { return next_[pos]; }
  const T& ValueAt(uint32_t pos) const { return data_[pos]; }
  void PrefetchBucket(size_t bucket) const {
    __builtin_prefetch(&buckets_[bucket]);
  }

 private:
  std::vector<uint32_t> buckets_;
  std::vector<uint32_t> next_;
  size_t mask_ = 0;
  const T* data_ = nullptr;
};

}  // namespace recycledb

#endif  // RECYCLEDB_BAT_HASH_INDEX_H_
