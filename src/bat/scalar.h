#ifndef RECYCLEDB_BAT_SCALAR_H_
#define RECYCLEDB_BAT_SCALAR_H_

#include <cstdint>
#include <string>
#include <variant>

#include "bat/types.h"

namespace recycledb {

/// A typed scalar value: MAL constants, query-template parameters, selection
/// bounds, and scalar aggregate results. Nil is in-band per type.
class Scalar {
 public:
  Scalar() : tag_(TypeTag::kVoid) {}

  static Scalar Bit(bool v) { return Scalar(TypeTag::kBit, int8_t(v ? 1 : 0)); }
  static Scalar Int(int32_t v) { return Scalar(TypeTag::kInt, v); }
  static Scalar Lng(int64_t v) { return Scalar(TypeTag::kLng, v); }
  static Scalar Dbl(double v) { return Scalar(TypeTag::kDbl, v); }
  static Scalar OidVal(Oid v) { return Scalar(TypeTag::kOid, v); }
  static Scalar DateVal(DateT v) { return Scalar(TypeTag::kDate, v); }
  static Scalar Str(std::string v) { return Scalar(TypeTag::kStr, std::move(v)); }

  /// A typed nil (SQL NULL / unbounded selection endpoint).
  static Scalar Nil(TypeTag t);

  TypeTag tag() const { return tag_; }
  bool IsVoid() const { return tag_ == TypeTag::kVoid; }
  bool is_nil() const;

  bool AsBit() const { return std::get<int8_t>(v_) != 0; }
  int32_t AsInt() const { return std::get<int32_t>(v_); }
  int64_t AsLng() const { return std::get<int64_t>(v_); }
  double AsDbl() const { return std::get<double>(v_); }
  Oid AsOid() const { return std::get<Oid>(v_); }
  DateT AsDate() const { return std::get<int32_t>(v_); }
  const std::string& AsStr() const { return std::get<std::string>(v_); }

  /// Typed getter over physical type (used by generic operator code).
  template <typename T>
  const T& Get() const {
    return std::get<T>(v_);
  }

  /// Numeric widening to double (cost models, arithmetic). Dies on strings.
  double ToDouble() const;

  /// Numeric widening to int64 (counts, keys). Dies on strings/doubles-nil.
  int64_t ToInt64() const;

  bool operator==(const Scalar& o) const;
  bool operator!=(const Scalar& o) const { return !(*this == o); }

  /// Three-way comparison; both scalars must have the same physical type.
  /// Nil sorts lowest.
  int Compare(const Scalar& o) const;

  size_t Hash() const;
  std::string ToString() const;

 private:
  template <typename V>
  Scalar(TypeTag t, V v) : tag_(t), v_(std::move(v)) {}

  TypeTag tag_;
  std::variant<std::monostate, int8_t, int32_t, int64_t, Oid, double,
               std::string>
      v_;
};

}  // namespace recycledb

#endif  // RECYCLEDB_BAT_SCALAR_H_
