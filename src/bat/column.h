#ifndef RECYCLEDB_BAT_COLUMN_H_
#define RECYCLEDB_BAT_COLUMN_H_

#include <memory>
#include <variant>
#include <vector>

#include "bat/scalar.h"
#include "bat/types.h"

namespace recycledb {

class Column;
using ColumnPtr = std::shared_ptr<const Column>;

/// A typed, immutable column of values: the physical storage unit behind a
/// BAT side. Columns are shared freely between BATs via shared_ptr, which is
/// how the kernel implements its "data structure sharing to minimise the
/// need for taking a complete copy" (paper §2.3).
///
/// Properties (`sorted`, `key`) steer operator implementation choices: a
/// range select over a sorted column returns a zero-copy view, a join whose
/// inner is a key column skips duplicate handling.
class Column {
 public:
  using Storage =
      std::variant<std::vector<int8_t>, std::vector<int32_t>,
                   std::vector<int64_t>, std::vector<Oid>, std::vector<double>,
                   std::vector<std::string>>;

  Column(TypeTag type, Storage storage);

  /// Builds a column from a typed vector. T must be the physical type of
  /// `type` (e.g., int32_t for kDate).
  template <typename T>
  static std::shared_ptr<Column> Make(TypeTag type, std::vector<T> v) {
    return std::make_shared<Column>(type, Storage(std::move(v)));
  }

  TypeTag type() const { return type_; }
  size_t size() const;

  template <typename T>
  const std::vector<T>& Data() const {
    return std::get<std::vector<T>>(storage_);
  }

  /// Ascending-sorted property (nils, if any, must lead).
  bool sorted() const { return sorted_; }
  void set_sorted(bool s) { sorted_ = s; }

  /// All values distinct.
  bool key() const { return key_; }
  void set_key(bool k) { key_ = k; }

  /// Persistent columns belong to the catalog; they are not accounted as
  /// recycled intermediate memory (paper Table III reports Bind memory 0).
  bool persistent() const { return persistent_; }
  void set_persistent(bool p) { persistent_ = p; }

  /// Heap bytes held by this column (strings include character data).
  size_t MemoryBytes() const { return mem_bytes_; }

  /// Boxed element access (slow path: printing, tests, tiny results).
  Scalar GetScalar(size_t i) const;

  /// Detects and sets the sorted property by scanning.
  void ComputeSorted();

 private:
  TypeTag type_;
  Storage storage_;
  bool sorted_ = false;
  bool key_ = false;
  bool persistent_ = false;
  size_t mem_bytes_ = 0;
};

}  // namespace recycledb

#endif  // RECYCLEDB_BAT_COLUMN_H_
