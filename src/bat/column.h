#ifndef RECYCLEDB_BAT_COLUMN_H_
#define RECYCLEDB_BAT_COLUMN_H_

#include <atomic>
#include <memory>
#include <mutex>
#include <variant>
#include <vector>

#include "bat/encoding.h"
#include "bat/scalar.h"
#include "bat/types.h"

namespace recycledb {

class Column;
using ColumnPtr = std::shared_ptr<const Column>;

/// A typed, immutable column of values: the physical storage unit behind a
/// BAT side. Columns are shared freely between BATs via shared_ptr, which is
/// how the kernel implements its "data structure sharing to minimise the
/// need for taking a complete copy" (paper §2.3).
///
/// Properties (`sorted`, `key`) steer operator implementation choices: a
/// range select over a sorted column returns a zero-copy view, a join whose
/// inner is a key column skips duplicate handling.
class Column {
 public:
  using Storage =
      std::variant<std::vector<int8_t>, std::vector<int32_t>,
                   std::vector<int64_t>, std::vector<Oid>, std::vector<double>,
                   std::vector<std::string>>;

  Column(TypeTag type, Storage storage);

  /// Builds a column from a typed vector. T must be the physical type of
  /// `type` (e.g., int32_t for kDate).
  template <typename T>
  static std::shared_ptr<Column> Make(TypeTag type, std::vector<T> v) {
    return std::make_shared<Column>(type, Storage(std::move(v)));
  }

  /// Builds an encoded-native column: the encoding IS the storage and raw
  /// values materialise lazily on the first Data() access (thread-safe).
  /// MemoryBytes() reports the encoded size and stays stable across the
  /// decode, so pool byte attribution never shifts under a live entry.
  static std::shared_ptr<Column> MakeEncoded(TypeTag type, EncodingPtr enc);

  TypeTag type() const { return type_; }
  size_t size() const;

  template <typename T>
  const std::vector<T>& Data() const {
    if (native_ && !decoded_.load(std::memory_order_acquire)) DecodeSlow();
    return std::get<std::vector<T>>(storage_);
  }

  /// The attached encoding, or null. Kernels probe this for compressed
  /// fast paths (code-space range selects, per-dictionary-value LIKE).
  const ColumnEncoding* encoding() const { return encoding_.get(); }
  const EncodingPtr& shared_encoding() const { return encoding_; }

  /// True when the encoding is the only materialised representation (raw
  /// storage decodes lazily); false for raw columns and for persistent
  /// columns that merely carry an encoding sidecar.
  bool encoded_native() const { return native_; }

  /// Attaches an encoding sidecar to a raw column (Catalog::BuildEncodings).
  /// Pre-serving only: callers must guarantee no concurrent readers.
  void AttachEncoding(EncodingPtr enc);

  /// Ascending-sorted property (nils, if any, must lead).
  bool sorted() const { return sorted_; }
  void set_sorted(bool s) { sorted_ = s; }

  /// All values distinct.
  bool key() const { return key_; }
  void set_key(bool k) { key_ = k; }

  /// Persistent columns belong to the catalog; they are not accounted as
  /// recycled intermediate memory (paper Table III reports Bind memory 0).
  bool persistent() const { return persistent_; }
  void set_persistent(bool p) { persistent_ = p; }

  /// Heap bytes held by this column (strings include character data).
  size_t MemoryBytes() const { return mem_bytes_; }

  /// Boxed element access (slow path: printing, tests, tiny results).
  Scalar GetScalar(size_t i) const;

  /// Detects and sets the sorted property by scanning.
  void ComputeSorted();

 private:
  /// Lazy decode of an encoded-native column into raw storage; runs at most
  /// once, and publishes via `decoded_` (release) so concurrent Data()
  /// readers either take the call_once or see the finished storage.
  void DecodeSlow() const;

  TypeTag type_;
  mutable Storage storage_;
  EncodingPtr encoding_;
  bool native_ = false;
  mutable std::atomic<bool> decoded_{false};
  mutable std::once_flag decode_once_;
  bool sorted_ = false;
  bool key_ = false;
  bool persistent_ = false;
  size_t mem_bytes_ = 0;
};

}  // namespace recycledb

#endif  // RECYCLEDB_BAT_COLUMN_H_
