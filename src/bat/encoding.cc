#include "bat/encoding.h"

#include <atomic>
#include <unordered_map>

#include "util/check.h"

namespace recycledb {

namespace {

std::atomic<bool> g_encoded_intermediates{false};

struct CodeSizeVisitor {
  template <typename C>
  size_t operator()(const std::vector<C>& v) const {
    return v.size();
  }
};

struct CodeBytesVisitor {
  template <typename C>
  size_t operator()(const std::vector<C>& v) const {
    return v.capacity() * sizeof(C);
  }
};

size_t DictBytes(const std::vector<std::string>& dict) {
  size_t bytes = dict.capacity() * sizeof(std::string);
  for (const auto& s : dict) bytes += s.capacity();
  return bytes;
}

/// Encodes `vals` as `v - base` codes of width C; nil values take the
/// reserved max code.
template <typename C, typename T>
std::vector<C> ForCodes(const std::vector<T>& vals, uint64_t base) {
  std::vector<C> codes;
  codes.reserve(vals.size());
  for (const T& v : vals) {
    if (IsNil(v)) {
      codes.push_back(ColumnEncoding::NilCode<C>());
    } else {
      codes.push_back(static_cast<C>(static_cast<uint64_t>(v) - base));
    }
  }
  return codes;
}

}  // namespace

bool EncodedIntermediatesEnabled() {
  return g_encoded_intermediates.load(std::memory_order_relaxed);
}

void SetEncodedIntermediates(bool on) {
  g_encoded_intermediates.store(on, std::memory_order_relaxed);
}

ColumnEncoding::ColumnEncoding(
    Kind kind, Codes codes, int64_t base,
    std::shared_ptr<const std::vector<std::string>> dict, bool owns_dict,
    size_t raw_bytes)
    : kind_(kind),
      codes_(std::move(codes)),
      base_(base),
      dict_(std::move(dict)),
      owns_dict_(owns_dict),
      raw_bytes_(raw_bytes) {}

size_t ColumnEncoding::size() const {
  return std::visit(CodeSizeVisitor{}, codes_);
}

size_t ColumnEncoding::MemoryBytes() const {
  size_t bytes = std::visit(CodeBytesVisitor{}, codes_);
  if (owns_dict_ && dict_) bytes += DictBytes(*dict_);
  return bytes;
}

template <typename T>
EncodingPtr ColumnEncoding::TryFor(const std::vector<T>& vals) {
  static_assert(std::is_integral_v<T>, "FOR encodes integer types only");
  uint64_t min = 0, max = 0;
  bool any = false;
  for (const T& v : vals) {
    if (IsNil(v)) continue;
    // Two's-complement bit pattern keeps ordering within one signedness;
    // signed ranges are handled through the unsigned difference below.
    uint64_t u = static_cast<uint64_t>(v);
    if constexpr (!std::is_signed_v<T>) {
      // Reserve the top half of the unsigned domain so base + code never
      // wraps when decoded through the signed base.
      if (u >= (1ull << 63)) return nullptr;
    }
    if (!any || static_cast<T>(u) < static_cast<T>(min)) min = u;
    if (!any || static_cast<T>(max) < static_cast<T>(u)) max = u;
    any = true;
  }
  uint64_t range = any ? max - min : 0;  // unsigned diff is exact for T
  size_t n = vals.size();
  auto build = [&](auto code_tag) -> EncodingPtr {
    using C = typename decltype(code_tag)::type;
    if (sizeof(C) >= sizeof(T)) return nullptr;
    if (range > static_cast<uint64_t>(NilCode<C>()) - 1) return nullptr;
    return std::make_shared<ColumnEncoding>(
        Kind::kFor, Codes(ForCodes<C>(vals, min)), static_cast<int64_t>(min),
        nullptr, false, n * sizeof(T));
  };
  if (auto e = build(PhysTag<uint8_t>{})) return e;
  if (auto e = build(PhysTag<uint16_t>{})) return e;
  if (auto e = build(PhysTag<uint32_t>{})) return e;
  return nullptr;
}

template EncodingPtr ColumnEncoding::TryFor<int32_t>(
    const std::vector<int32_t>&);
template EncodingPtr ColumnEncoding::TryFor<int64_t>(
    const std::vector<int64_t>&);
template EncodingPtr ColumnEncoding::TryFor<Oid>(const std::vector<Oid>&);

EncodingPtr ColumnEncoding::TryDict(const std::vector<std::string>& vals,
                                    size_t max_distinct) {
  auto dict = std::make_shared<std::vector<std::string>>();
  std::unordered_map<std::string, uint32_t> index;
  std::vector<uint32_t> wide;
  wide.reserve(vals.size());
  for (const std::string& s : vals) {
    auto [it, fresh] =
        index.emplace(s, static_cast<uint32_t>(dict->size()));
    if (fresh) {
      if (dict->size() >= max_distinct) return nullptr;
      dict->push_back(s);
    }
    wide.push_back(it->second);
  }
  size_t raw = vals.size() * sizeof(std::string);
  for (const std::string& s : vals) raw += s.capacity();
  size_t nd = dict->size();
  auto narrow = [&](auto code_tag) -> Codes {
    using C = typename decltype(code_tag)::type;
    std::vector<C> codes;
    codes.reserve(wide.size());
    for (uint32_t c : wide) codes.push_back(static_cast<C>(c));
    return Codes(std::move(codes));
  };
  Codes codes;
  if (nd <= NilCode<uint8_t>()) {
    codes = narrow(PhysTag<uint8_t>{});
  } else if (nd <= NilCode<uint16_t>()) {
    codes = narrow(PhysTag<uint16_t>{});
  } else {
    codes = Codes(std::move(wide));
  }
  return std::make_shared<ColumnEncoding>(Kind::kDict, std::move(codes), 0,
                                          std::move(dict), /*owns_dict=*/true,
                                          raw);
}

EncodingPtr ColumnEncoding::Gather(const ColumnEncoding& src, size_t offset,
                                   const std::vector<uint32_t>& sel) {
  return src.VisitCodes([&](const auto& codes) -> EncodingPtr {
    using C = typename std::decay_t<decltype(codes)>::value_type;
    std::vector<C> out;
    out.reserve(sel.size());
    const C* base = codes.data() + offset;
    for (uint32_t i : sel) out.push_back(base[i]);
    size_t raw;
    if (src.kind_ == Kind::kDict) {
      raw = sel.size() * sizeof(std::string);
      const auto& d = *src.dict_;
      for (C c : out) raw += d[c].size();
    } else {
      raw = sel.size() * (src.raw_bytes_ / std::max<size_t>(src.size(), 1));
    }
    return std::make_shared<ColumnEncoding>(src.kind_, Codes(std::move(out)),
                                            src.base_, src.dict_,
                                            /*owns_dict=*/false, raw);
  });
}

template <typename T>
void ColumnEncoding::DecodeTo(std::vector<T>* out) const {
  RDB_CHECK(kind_ == Kind::kFor);
  VisitCodes([&](const auto& codes) {
    using C = typename std::decay_t<decltype(codes)>::value_type;
    out->clear();
    out->reserve(codes.size());
    for (C c : codes) {
      if (c == NilCode<C>()) {
        out->push_back(NilOf<T>());
      } else {
        out->push_back(static_cast<T>(static_cast<uint64_t>(base_) +
                                      static_cast<uint64_t>(c)));
      }
    }
  });
}

template void ColumnEncoding::DecodeTo<int32_t>(std::vector<int32_t>*) const;
template void ColumnEncoding::DecodeTo<int64_t>(std::vector<int64_t>*) const;
template void ColumnEncoding::DecodeTo<Oid>(std::vector<Oid>*) const;

void ColumnEncoding::DecodeStrings(std::vector<std::string>* out) const {
  RDB_CHECK(kind_ == Kind::kDict);
  VisitCodes([&](const auto& codes) {
    out->clear();
    out->reserve(codes.size());
    for (auto c : codes) out->push_back((*dict_)[c]);
  });
}

}  // namespace recycledb
