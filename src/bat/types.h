#ifndef RECYCLEDB_BAT_TYPES_H_
#define RECYCLEDB_BAT_TYPES_H_

#include <cstdint>
#include <limits>
#include <string>

#include "util/date.h"

namespace recycledb {

/// Object identifiers. BAT heads are typically dense oid sequences; join
/// results carry materialised oid columns.
using Oid = uint64_t;
inline constexpr Oid kNilOid = std::numeric_limits<Oid>::max();

/// Logical column types, mirroring the MonetDB base types used in the paper
/// (`:oid`, `:int`, `:lng`, `:dbl`, `:date`, `:str`, `:bit`).
enum class TypeTag : uint8_t {
  kVoid,  // dense oid sequence, no materialised storage
  kBit,   // boolean stored as int8
  kInt,   // int32
  kLng,   // int64
  kDbl,   // double
  kOid,   // uint64 object id
  kDate,  // int32 days since epoch
  kStr,   // variable-length string
};

const char* TypeName(TypeTag t);

/// Logical -> physical storage mapping. kDate shares int32 storage with
/// kInt; kBit is stored as int8; kVoid has no storage at all.
template <TypeTag>
struct Physical;

template <> struct Physical<TypeTag::kBit> { using type = int8_t; };
template <> struct Physical<TypeTag::kInt> { using type = int32_t; };
template <> struct Physical<TypeTag::kLng> { using type = int64_t; };
template <> struct Physical<TypeTag::kDbl> { using type = double; };
template <> struct Physical<TypeTag::kOid> { using type = Oid; };
template <> struct Physical<TypeTag::kDate> { using type = int32_t; };
template <> struct Physical<TypeTag::kStr> { using type = std::string; };

/// Per-physical-type nil markers (MonetDB-style in-band nils).
template <typename T>
constexpr T NilOf();

template <> constexpr int8_t NilOf<int8_t>() {
  return std::numeric_limits<int8_t>::min();
}
template <> constexpr int32_t NilOf<int32_t>() {
  return std::numeric_limits<int32_t>::min();
}
template <> constexpr int64_t NilOf<int64_t>() {
  return std::numeric_limits<int64_t>::min();
}
template <> constexpr double NilOf<double>() {
  return -std::numeric_limits<double>::max();
}
template <> constexpr Oid NilOf<Oid>() { return kNilOid; }
template <> inline std::string NilOf<std::string>() { return std::string(); }

template <typename T>
inline bool IsNil(const T& v) {
  return v == NilOf<T>();
}
inline bool IsNil(const std::string& v) { return v.empty(); }

/// Token used to dispatch generic code over physical types.
template <typename T>
struct PhysTag {
  using type = T;
};

/// Invokes `f(PhysTag<T>{})` for the physical type of `tag`.
/// kVoid is not dispatchable (dense sides are handled by callers).
template <typename F>
decltype(auto) VisitPhysical(TypeTag tag, F&& f) {
  switch (tag) {
    case TypeTag::kBit:
      return f(PhysTag<int8_t>{});
    case TypeTag::kInt:
    case TypeTag::kDate:
      return f(PhysTag<int32_t>{});
    case TypeTag::kLng:
      return f(PhysTag<int64_t>{});
    case TypeTag::kDbl:
      return f(PhysTag<double>{});
    case TypeTag::kOid:
    case TypeTag::kVoid:
      return f(PhysTag<Oid>{});
    case TypeTag::kStr:
      return f(PhysTag<std::string>{});
  }
  return f(PhysTag<Oid>{});  // unreachable; silences -Wreturn-type
}

}  // namespace recycledb

#endif  // RECYCLEDB_BAT_TYPES_H_
