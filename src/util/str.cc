#include "util/str.h"

#include <cstdio>
#include <vector>

namespace recycledb {

std::string StrFormat(const char* fmt, ...) {
  va_list ap;
  va_start(ap, fmt);
  va_list ap2;
  va_copy(ap2, ap);
  int n = std::vsnprintf(nullptr, 0, fmt, ap);
  va_end(ap);
  if (n <= 0) {
    va_end(ap2);
    return std::string();
  }
  std::string out(static_cast<size_t>(n), '\0');
  std::vsnprintf(out.data(), out.size() + 1, fmt, ap2);
  va_end(ap2);
  return out;
}

bool LikeMatch(const std::string& value, const std::string& pattern) {
  // Iterative two-pointer wildcard matching: linear in |value| + |pattern|
  // with backtracking to the last '%'.
  size_t v = 0, p = 0;
  size_t star_p = std::string::npos, star_v = 0;
  while (v < value.size()) {
    if (p < pattern.size() &&
        (pattern[p] == '_' || pattern[p] == value[v])) {
      ++v;
      ++p;
    } else if (p < pattern.size() && pattern[p] == '%') {
      star_p = p++;
      star_v = v;
    } else if (star_p != std::string::npos) {
      p = star_p + 1;
      v = ++star_v;
    } else {
      return false;
    }
  }
  while (p < pattern.size() && pattern[p] == '%') ++p;
  return p == pattern.size();
}

LikePattern::LikePattern(std::string pattern) : pattern_(std::move(pattern)) {
  size_t first = pattern_.find_first_not_of('%');
  if (first == std::string::npos) {
    // Only '%' runs (including the empty pattern matching only "").
    shape_ = pattern_.empty() ? Shape::kExact : Shape::kAny;
    return;
  }
  size_t last = pattern_.find_last_not_of('%');
  std::string core = pattern_.substr(first, last - first + 1);
  if (core.find('%') != std::string::npos ||
      core.find('_') != std::string::npos) {
    shape_ = Shape::kGeneral;
    return;
  }
  bool lead = first > 0;                      // pattern starts with '%'
  bool trail = last + 1 < pattern_.size();    // pattern ends with '%'
  literal_ = std::move(core);
  shape_ = lead ? (trail ? Shape::kContains : Shape::kSuffix)
                : (trail ? Shape::kPrefix : Shape::kExact);
}

bool LikePattern::Match(const std::string& value) const {
  switch (shape_) {
    case Shape::kAny:
      return true;
    case Shape::kExact:
      return value == literal_;
    case Shape::kPrefix:
      return value.size() >= literal_.size() &&
             value.compare(0, literal_.size(), literal_) == 0;
    case Shape::kSuffix:
      return value.size() >= literal_.size() &&
             value.compare(value.size() - literal_.size(), literal_.size(),
                           literal_) == 0;
    case Shape::kContains:
      return value.find(literal_) != std::string::npos;
    case Shape::kGeneral:
      return LikeMatch(value, pattern_);
  }
  return false;
}

}  // namespace recycledb
