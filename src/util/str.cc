#include "util/str.h"

#include <cstdio>
#include <vector>

namespace recycledb {

std::string StrFormat(const char* fmt, ...) {
  va_list ap;
  va_start(ap, fmt);
  va_list ap2;
  va_copy(ap2, ap);
  int n = std::vsnprintf(nullptr, 0, fmt, ap);
  va_end(ap);
  if (n <= 0) {
    va_end(ap2);
    return std::string();
  }
  std::string out(static_cast<size_t>(n), '\0');
  std::vsnprintf(out.data(), out.size() + 1, fmt, ap2);
  va_end(ap2);
  return out;
}

bool LikeMatch(const std::string& value, const std::string& pattern) {
  // Iterative two-pointer wildcard matching: linear in |value| + |pattern|
  // with backtracking to the last '%'.
  size_t v = 0, p = 0;
  size_t star_p = std::string::npos, star_v = 0;
  while (v < value.size()) {
    if (p < pattern.size() &&
        (pattern[p] == '_' || pattern[p] == value[v])) {
      ++v;
      ++p;
    } else if (p < pattern.size() && pattern[p] == '%') {
      star_p = p++;
      star_v = v;
    } else if (star_p != std::string::npos) {
      p = star_p + 1;
      v = ++star_v;
    } else {
      return false;
    }
  }
  while (p < pattern.size() && pattern[p] == '%') ++p;
  return p == pattern.size();
}

}  // namespace recycledb
