#include "util/date.h"

#include <cstdio>
#include <cstdlib>
#include <limits>

namespace recycledb {

namespace {

// Howard Hinnant's civil-days algorithms (public domain).
int64_t DaysFromCivil(int y, int m, int d) {
  y -= m <= 2;
  const int64_t era = (y >= 0 ? y : y - 399) / 400;
  const unsigned yoe = static_cast<unsigned>(y - era * 400);            // [0, 399]
  const unsigned doy = (153 * (m + (m > 2 ? -3 : 9)) + 2) / 5 + d - 1;  // [0, 365]
  const unsigned doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;           // [0, 146096]
  return era * 146097 + static_cast<int64_t>(doe) - 719468;
}

void CivilFromDays(int64_t z, int* yy, int* mm, int* dd) {
  z += 719468;
  const int64_t era = (z >= 0 ? z : z - 146096) / 146097;
  const unsigned doe = static_cast<unsigned>(z - era * 146097);           // [0, 146096]
  const unsigned yoe = (doe - doe / 1460 + doe / 36524 - doe / 146096) / 365;
  const int64_t y = static_cast<int64_t>(yoe) + era * 400;
  const unsigned doy = doe - (365 * yoe + yoe / 4 - yoe / 100);           // [0, 365]
  const unsigned mp = (5 * doy + 2) / 153;                                // [0, 11]
  const unsigned d = doy - (153 * mp + 2) / 5 + 1;                        // [1, 31]
  const unsigned m = mp + (mp < 10 ? 3 : -9);                             // [1, 12]
  *yy = static_cast<int>(y + (m <= 2));
  *mm = static_cast<int>(m);
  *dd = static_cast<int>(d);
}

bool IsLeap(int y) { return (y % 4 == 0 && y % 100 != 0) || y % 400 == 0; }

int DaysInMonth(int y, int m) {
  static const int kDays[] = {31, 28, 31, 30, 31, 30, 31, 31, 30, 31, 30, 31};
  if (m == 2 && IsLeap(y)) return 29;
  return kDays[m - 1];
}

}  // namespace

DateT DateFromYmd(int year, int month, int day) {
  return static_cast<DateT>(DaysFromCivil(year, month, day));
}

void YmdFromDate(DateT date, int* year, int* month, int* day) {
  CivilFromDays(date, year, month, day);
}

DateT AddMonths(DateT date, int months) {
  int y, m, d;
  YmdFromDate(date, &y, &m, &d);
  int total = (y * 12 + (m - 1)) + months;
  int ny = total / 12;
  int nm = total % 12;
  if (nm < 0) {
    nm += 12;
    ny -= 1;
  }
  nm += 1;
  int nd = d;
  int dim = DaysInMonth(ny, nm);
  if (nd > dim) nd = dim;
  return DateFromYmd(ny, nm, nd);
}

std::string DateToString(DateT date) {
  int y, m, d;
  YmdFromDate(date, &y, &m, &d);
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%04d-%02d-%02d", y, m, d);
  return buf;
}

DateT DateFromString(const std::string& s) {
  int y = 0, m = 0, d = 0;
  if (std::sscanf(s.c_str(), "%d-%d-%d", &y, &m, &d) != 3)
    return std::numeric_limits<int32_t>::min();
  if (m < 1 || m > 12 || d < 1 || d > DaysInMonth(y, m))
    return std::numeric_limits<int32_t>::min();
  return DateFromYmd(y, m, d);
}

}  // namespace recycledb
