#ifndef RECYCLEDB_UTIL_STATUS_H_
#define RECYCLEDB_UTIL_STATUS_H_

#include <string>
#include <utility>
#include <variant>

namespace recycledb {

/// Error taxonomy for the engine. Kept deliberately small: the kernel is a
/// library, so callers mostly branch on ok()/!ok() and log the message.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kTypeMismatch,
  kOutOfRange,
  kInternal,
  kNotImplemented,
  kDeadlineExceeded,
  kWriteConflict,
};

/// Arrow/RocksDB-style status object. The engine does not use exceptions;
/// every fallible public entry point returns a Status or a Result<T>.
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status TypeMismatch(std::string msg) {
    return Status(StatusCode::kTypeMismatch, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status NotImplemented(std::string msg) {
    return Status(StatusCode::kNotImplemented, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  /// First-writer-wins: another transaction committed an overlapping change
  /// after this transaction's begin epoch; the losing commit is rejected and
  /// its write set discarded.
  static Status WriteConflict(std::string msg) {
    return Status(StatusCode::kWriteConflict, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return msg_; }

  std::string ToString() const {
    if (ok()) return "OK";
    return std::string(CodeName(code_)) + ": " + msg_;
  }

  static const char* CodeName(StatusCode c) {
    switch (c) {
      case StatusCode::kOk:
        return "OK";
      case StatusCode::kInvalidArgument:
        return "InvalidArgument";
      case StatusCode::kNotFound:
        return "NotFound";
      case StatusCode::kTypeMismatch:
        return "TypeMismatch";
      case StatusCode::kOutOfRange:
        return "OutOfRange";
      case StatusCode::kInternal:
        return "Internal";
      case StatusCode::kNotImplemented:
        return "NotImplemented";
      case StatusCode::kDeadlineExceeded:
        return "DeadlineExceeded";
      case StatusCode::kWriteConflict:
        return "WriteConflict";
    }
    return "Unknown";
  }

 private:
  Status(StatusCode code, std::string msg) : code_(code), msg_(std::move(msg)) {}

  StatusCode code_;
  std::string msg_;
};

/// Result<T> holds either a value or an error Status.
template <typename T>
class Result {
 public:
  Result(T value) : v_(std::move(value)) {}  // NOLINT: implicit by design
  Result(Status status) : v_(std::move(status)) {}  // NOLINT

  bool ok() const { return std::holds_alternative<T>(v_); }

  const Status& status() const {
    static const Status kOk = Status::OK();
    if (ok()) return kOk;
    return std::get<Status>(v_);
  }

  T& value() & { return std::get<T>(v_); }
  const T& value() const& { return std::get<T>(v_); }
  T&& value() && { return std::get<T>(std::move(v_)); }

  /// Returns the value or dies; for tests and examples.
  T ValueOrDie() &&;

 private:
  std::variant<T, Status> v_;
};

#define RDB_RETURN_NOT_OK(expr)                 \
  do {                                          \
    ::recycledb::Status _st = (expr);           \
    if (!_st.ok()) return _st;                  \
  } while (0)

#define RDB_CONCAT_IMPL(a, b) a##b
#define RDB_CONCAT(a, b) RDB_CONCAT_IMPL(a, b)

/// Assigns the value of a Result expression to `lhs`, propagating errors.
#define RDB_ASSIGN_OR_RETURN(lhs, rexpr)                       \
  auto RDB_CONCAT(_res_, __LINE__) = (rexpr);                  \
  if (!RDB_CONCAT(_res_, __LINE__).ok())                       \
    return RDB_CONCAT(_res_, __LINE__).status();               \
  lhs = std::move(RDB_CONCAT(_res_, __LINE__)).value()

}  // namespace recycledb

#include <cstdio>
#include <cstdlib>

namespace recycledb {

template <typename T>
T Result<T>::ValueOrDie() && {
  if (!ok()) {
    std::fprintf(stderr, "Result::ValueOrDie on error: %s\n",
                 status().ToString().c_str());
    std::abort();
  }
  return std::get<T>(std::move(v_));
}

}  // namespace recycledb

#endif  // RECYCLEDB_UTIL_STATUS_H_
