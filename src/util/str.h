#ifndef RECYCLEDB_UTIL_STR_H_
#define RECYCLEDB_UTIL_STR_H_

#include <cstdarg>
#include <string>

namespace recycledb {

/// printf-style formatting into a std::string (gcc 12 lacks std::format).
std::string StrFormat(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

/// SQL LIKE pattern match with '%' (any run) and '_' (any single char).
/// No escape-character support; the workloads do not use escapes.
bool LikeMatch(const std::string& value, const std::string& pattern);

/// A LIKE pattern preprocessed once and matched many times: classification
/// happens at construction (LikeSelect compiles one per call instead of
/// re-interpreting the raw pattern per row), and the common literal shapes
/// — exact, "lit%", "%lit", "%lit%", "%" — match without entering the
/// general wildcard automaton. Matches LikeMatch exactly on every input.
class LikePattern {
 public:
  explicit LikePattern(std::string pattern);

  bool Match(const std::string& value) const;

 private:
  enum class Shape {
    kAny,       ///< "%" (or a run of only '%'): everything matches
    kExact,     ///< no wildcards: value == literal
    kPrefix,    ///< "lit%"
    kSuffix,    ///< "%lit"
    kContains,  ///< "%lit%"
    kGeneral,   ///< anything else: fall back to LikeMatch
  };

  Shape shape_;
  std::string literal_;  ///< the wildcard-free literal of the fast shapes
  std::string pattern_;  ///< original pattern (kGeneral)
};

}  // namespace recycledb

#endif  // RECYCLEDB_UTIL_STR_H_
