#ifndef RECYCLEDB_UTIL_STR_H_
#define RECYCLEDB_UTIL_STR_H_

#include <cstdarg>
#include <string>

namespace recycledb {

/// printf-style formatting into a std::string (gcc 12 lacks std::format).
std::string StrFormat(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

/// SQL LIKE pattern match with '%' (any run) and '_' (any single char).
/// No escape-character support; the workloads do not use escapes.
bool LikeMatch(const std::string& value, const std::string& pattern);

}  // namespace recycledb

#endif  // RECYCLEDB_UTIL_STR_H_
