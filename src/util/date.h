#ifndef RECYCLEDB_UTIL_DATE_H_
#define RECYCLEDB_UTIL_DATE_H_

#include <cstdint>
#include <string>

namespace recycledb {

/// Dates are stored as int32 days since 1970-01-01 (proleptic Gregorian).
/// This mirrors MonetDB's `date` base type closely enough for the TPC-H and
/// SkyServer workloads (date arithmetic, month addition, range predicates).
using DateT = int32_t;

/// Converts a calendar date to days-since-epoch. Valid for years 1600-9999.
DateT DateFromYmd(int year, int month, int day);

/// Splits days-since-epoch into (year, month, day).
void YmdFromDate(DateT date, int* year, int* month, int* day);

/// SQL `date + interval 'n' month`: clamps the day-of-month as SQL does.
DateT AddMonths(DateT date, int months);

/// SQL `date + interval 'n' day`.
inline DateT AddDays(DateT date, int days) { return date + days; }

/// Formats as YYYY-MM-DD.
std::string DateToString(DateT date);

/// Parses YYYY-MM-DD; returns INT32_MIN on malformed input.
DateT DateFromString(const std::string& s);

}  // namespace recycledb

#endif  // RECYCLEDB_UTIL_DATE_H_
