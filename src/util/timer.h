#ifndef RECYCLEDB_UTIL_TIMER_H_
#define RECYCLEDB_UTIL_TIMER_H_

#include <chrono>
#include <cstdint>

namespace recycledb {

/// Monotonic wall-clock helpers used for operator cost accounting and
/// benchmark reporting.
inline int64_t NowNanos() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

inline double NowMillis() { return static_cast<double>(NowNanos()) / 1e6; }

/// Simple stopwatch: measures elapsed time since construction or Restart().
class StopWatch {
 public:
  StopWatch() : start_(NowNanos()) {}

  void Restart() { start_ = NowNanos(); }

  int64_t ElapsedNanos() const { return NowNanos() - start_; }
  double ElapsedMillis() const {
    return static_cast<double>(ElapsedNanos()) / 1e6;
  }
  double ElapsedSeconds() const {
    return static_cast<double>(ElapsedNanos()) / 1e9;
  }

 private:
  int64_t start_;
};

}  // namespace recycledb

#endif  // RECYCLEDB_UTIL_TIMER_H_
