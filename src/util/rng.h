#ifndef RECYCLEDB_UTIL_RNG_H_
#define RECYCLEDB_UTIL_RNG_H_

#include <cstdint>

namespace recycledb {

/// Deterministic xorshift128+ generator. Workload generators must be
/// reproducible across runs, so we avoid std::mt19937's platform quirks and
/// keep seeding explicit.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL) {
    // SplitMix64 seeding to spread low-entropy seeds.
    uint64_t z = seed;
    for (int i = 0; i < 2; ++i) {
      z += 0x9e3779b97f4a7c15ULL;
      uint64_t x = z;
      x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
      x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
      s_[i] = x ^ (x >> 31);
    }
    if (s_[0] == 0 && s_[1] == 0) s_[0] = 1;
  }

  uint64_t Next() {
    uint64_t x = s_[0];
    const uint64_t y = s_[1];
    s_[0] = y;
    x ^= x << 23;
    s_[1] = x ^ y ^ (x >> 17) ^ (y >> 26);
    return s_[1] + y;
  }

  /// Uniform in [0, n).
  uint64_t Uniform(uint64_t n) { return n == 0 ? 0 : Next() % n; }

  /// Uniform in [lo, hi] inclusive.
  int64_t UniformRange(int64_t lo, int64_t hi) {
    if (hi <= lo) return lo;
    return lo + static_cast<int64_t>(Uniform(static_cast<uint64_t>(hi - lo + 1)));
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
  }

  /// Uniform double in [lo, hi).
  double UniformDouble(double lo, double hi) {
    return lo + (hi - lo) * NextDouble();
  }

  bool Bernoulli(double p) { return NextDouble() < p; }

 private:
  uint64_t s_[2];
};

}  // namespace recycledb

#endif  // RECYCLEDB_UTIL_RNG_H_
