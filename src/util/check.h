#ifndef RECYCLEDB_UTIL_CHECK_H_
#define RECYCLEDB_UTIL_CHECK_H_

#include <cstdio>
#include <cstdlib>

/// Internal invariant checks. These guard programming errors (not user
/// input, which goes through Status); a failed check aborts the process.
#define RDB_CHECK(cond)                                                   \
  do {                                                                    \
    if (!(cond)) {                                                        \
      std::fprintf(stderr, "RDB_CHECK failed at %s:%d: %s\n", __FILE__,   \
                   __LINE__, #cond);                                      \
      std::abort();                                                       \
    }                                                                     \
  } while (0)

#define RDB_DCHECK(cond) RDB_CHECK(cond)

#define RDB_UNREACHABLE()                                                \
  do {                                                                   \
    std::fprintf(stderr, "RDB_UNREACHABLE hit at %s:%d\n", __FILE__,     \
                 __LINE__);                                              \
    std::abort();                                                        \
  } while (0)

#endif  // RECYCLEDB_UTIL_CHECK_H_
