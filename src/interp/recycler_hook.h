#ifndef RECYCLEDB_INTERP_RECYCLER_HOOK_H_
#define RECYCLEDB_INTERP_RECYCLER_HOOK_H_

#include <vector>

#include "catalog/catalog.h"
#include "mal/program.h"
#include "mal/value.h"

namespace recycledb {

/// Interpreter-side view of the recycler run-time support (Algorithm 1).
/// The interpreter wraps every instruction marked by the recycler optimiser
/// with OnEntry (match & reuse) and OnExit (admission). The core library
/// provides the concrete implementation; keeping the interface here lets the
/// interpreter stay independent of recycling policy details.
class RecyclerHook {
 public:
  virtual ~RecyclerHook() = default;

  /// Identifies one dynamic instruction: the template, its pc, and the
  /// run-time-resolved argument values.
  struct InstrView {
    const Program* prog = nullptr;
    int pc = 0;
    Opcode op{};
    const std::vector<MalValue>* args = nullptr;
  };

  /// Starts a query invocation (protects its intermediates from eviction and
  /// scopes local-vs-global reuse classification).
  virtual void BeginQuery(const Program& prog) = 0;
  virtual void EndQuery() = 0;

  /// recycleEntry(): returns true and fills `results` if the instruction was
  /// answered from the pool (exact match or subsumption).
  virtual bool OnEntry(const InstrView& instr,
                       std::vector<MalValue>* results) = 0;

  /// recycleExit(): offers the executed instruction's results for admission.
  /// `deps` is the set of persistent columns the results derive from.
  virtual void OnExit(const InstrView& instr,
                      const std::vector<MalValue>& results, double cpu_ms,
                      const std::vector<ColumnId>& deps) = 0;
};

}  // namespace recycledb

#endif  // RECYCLEDB_INTERP_RECYCLER_HOOK_H_
