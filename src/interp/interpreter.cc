#include "interp/interpreter.h"

#include <algorithm>

#include "engine/operators.h"
#include "util/check.h"
#include "util/timer.h"

namespace recycledb {

namespace {

/// Merges sorted ColumnId dependency sets (kept small and sorted).
void MergeDeps(std::vector<ColumnId>* into, const std::vector<ColumnId>& from) {
  if (from.empty()) return;
  std::vector<ColumnId> merged;
  merged.reserve(into->size() + from.size());
  std::set_union(into->begin(), into->end(), from.begin(), from.end(),
                 std::back_inserter(merged));
  *into = std::move(merged);
}

engine::AggFn AggFnOf(Opcode op) {
  switch (op) {
    case Opcode::kAggrCount:
    case Opcode::kGrpCount:
      return engine::AggFn::kCount;
    case Opcode::kAggrSum:
    case Opcode::kGrpSum:
      return engine::AggFn::kSum;
    case Opcode::kAggrMin:
    case Opcode::kGrpMin:
      return engine::AggFn::kMin;
    case Opcode::kAggrMax:
    case Opcode::kGrpMax:
      return engine::AggFn::kMax;
    case Opcode::kAggrAvg:
    case Opcode::kGrpAvg:
      return engine::AggFn::kAvg;
    default:
      RDB_UNREACHABLE();
  }
}

engine::BinOp BinOpOf(Opcode op) {
  switch (op) {
    case Opcode::kCalcAdd:
      return engine::BinOp::kAdd;
    case Opcode::kCalcSub:
      return engine::BinOp::kSub;
    case Opcode::kCalcMul:
      return engine::BinOp::kMul;
    case Opcode::kCalcDiv:
      return engine::BinOp::kDiv;
    default:
      RDB_UNREACHABLE();
  }
}

engine::CmpOp CmpOpOf(Opcode op) {
  switch (op) {
    case Opcode::kCmpEq:
      return engine::CmpOp::kEq;
    case Opcode::kCmpNe:
      return engine::CmpOp::kNe;
    case Opcode::kCmpLt:
      return engine::CmpOp::kLt;
    case Opcode::kCmpLe:
      return engine::CmpOp::kLe;
    case Opcode::kCmpGt:
      return engine::CmpOp::kGt;
    case Opcode::kCmpGe:
      return engine::CmpOp::kGe;
    default:
      RDB_UNREACHABLE();
  }
}

}  // namespace

Result<std::vector<MalValue>> Interpreter::ExecInstr(
    const Instruction& ins, const std::vector<MalValue>& a,
    QueryResult* result) {
  using namespace engine;  // NOLINT: operator vocabulary
  std::vector<MalValue> out;
  switch (ins.op) {
    case Opcode::kBind: {
      // With a snapshot pinned, binds resolve against the immutable epoch
      // view and never touch the mutable catalog (lock-free MVCC reads).
      RDB_ASSIGN_OR_RETURN(
          BatPtr b, snapshot_ != nullptr
                        ? snapshot_->BindColumn(a[1].scalar().AsStr(),
                                                a[2].scalar().AsStr())
                        : catalog_->BindColumn(a[1].scalar().AsStr(),
                                               a[2].scalar().AsStr()));
      out.emplace_back(std::move(b));
      break;
    }
    case Opcode::kBindIdx: {
      RDB_ASSIGN_OR_RETURN(
          BatPtr b, snapshot_ != nullptr
                        ? snapshot_->BindIndex(a[2].scalar().AsStr())
                        : catalog_->BindIndex(a[2].scalar().AsStr()));
      out.emplace_back(std::move(b));
      break;
    }
    case Opcode::kSelect: {
      RDB_ASSIGN_OR_RETURN(
          BatPtr b, Select(a[0].bat(), a[1].scalar(), a[2].scalar(),
                           a[3].scalar().AsBit(), a[4].scalar().AsBit()));
      out.emplace_back(std::move(b));
      break;
    }
    case Opcode::kUselect: {
      RDB_ASSIGN_OR_RETURN(BatPtr b, Uselect(a[0].bat(), a[1].scalar()));
      out.emplace_back(std::move(b));
      break;
    }
    case Opcode::kAntiUselect: {
      RDB_ASSIGN_OR_RETURN(BatPtr b, AntiUselect(a[0].bat(), a[1].scalar()));
      out.emplace_back(std::move(b));
      break;
    }
    case Opcode::kLikeSelect: {
      RDB_ASSIGN_OR_RETURN(BatPtr b,
                           LikeSelect(a[0].bat(), a[1].scalar().AsStr()));
      out.emplace_back(std::move(b));
      break;
    }
    case Opcode::kSelectNotNil: {
      RDB_ASSIGN_OR_RETURN(BatPtr b, SelectNotNil(a[0].bat()));
      out.emplace_back(std::move(b));
      break;
    }
    case Opcode::kJoin: {
      RDB_ASSIGN_OR_RETURN(BatPtr b, Join(a[0].bat(), a[1].bat()));
      out.emplace_back(std::move(b));
      break;
    }
    case Opcode::kSemijoin: {
      RDB_ASSIGN_OR_RETURN(BatPtr b, Semijoin(a[0].bat(), a[1].bat()));
      out.emplace_back(std::move(b));
      break;
    }
    case Opcode::kAntiSemijoin: {
      RDB_ASSIGN_OR_RETURN(BatPtr b, AntiSemijoin(a[0].bat(), a[1].bat()));
      out.emplace_back(std::move(b));
      break;
    }
    case Opcode::kMarkT:
      out.emplace_back(MarkT(a[0].bat(), a[1].scalar().AsOid()));
      break;
    case Opcode::kReverse:
      out.emplace_back(Reverse(a[0].bat()));
      break;
    case Opcode::kMirror:
      out.emplace_back(Mirror(a[0].bat()));
      break;
    case Opcode::kSlice: {
      RDB_ASSIGN_OR_RETURN(
          BatPtr b,
          Slice(a[0].bat(), static_cast<size_t>(a[1].scalar().AsLng()),
                static_cast<size_t>(a[2].scalar().AsLng())));
      out.emplace_back(std::move(b));
      break;
    }
    case Opcode::kKunique: {
      RDB_ASSIGN_OR_RETURN(BatPtr b, Kunique(a[0].bat()));
      out.emplace_back(std::move(b));
      break;
    }
    case Opcode::kGroupBy: {
      RDB_ASSIGN_OR_RETURN(GroupResult g, GroupBy(a[0].bat()));
      out.emplace_back(std::move(g.map));
      out.emplace_back(std::move(g.reps));
      break;
    }
    case Opcode::kSubGroupBy: {
      RDB_ASSIGN_OR_RETURN(GroupResult g, SubGroupBy(a[0].bat(), a[1].bat()));
      out.emplace_back(std::move(g.map));
      out.emplace_back(std::move(g.reps));
      break;
    }
    case Opcode::kAggrCount:
    case Opcode::kAggrSum:
    case Opcode::kAggrMin:
    case Opcode::kAggrMax:
    case Opcode::kAggrAvg: {
      RDB_ASSIGN_OR_RETURN(Scalar s, Aggr(AggFnOf(ins.op), a[0].bat()));
      out.emplace_back(std::move(s));
      break;
    }
    case Opcode::kGrpCount:
    case Opcode::kGrpSum:
    case Opcode::kGrpMin:
    case Opcode::kGrpMax:
    case Opcode::kGrpAvg: {
      RDB_ASSIGN_OR_RETURN(
          BatPtr b, GroupedAggr(AggFnOf(ins.op), a[0].bat(), a[1].bat(),
                                a[2].bat()->size()));
      out.emplace_back(std::move(b));
      break;
    }
    case Opcode::kCalcAdd:
    case Opcode::kCalcSub:
    case Opcode::kCalcMul:
    case Opcode::kCalcDiv: {
      engine::BinOp op = BinOpOf(ins.op);
      Result<BatPtr> r = [&]() -> Result<BatPtr> {
        if (a[0].is_bat() && a[1].is_bat())
          return CalcBin(op, a[0].bat(), a[1].bat());
        if (a[0].is_bat()) return CalcBinConst(op, a[0].bat(), a[1].scalar());
        if (a[1].is_bat()) return CalcConstBin(op, a[0].scalar(), a[1].bat());
        return Status::InvalidArgument("calc needs at least one bat operand");
      }();
      if (!r.ok()) return r.status();
      out.emplace_back(std::move(r).value());
      break;
    }
    case Opcode::kCalcYear: {
      RDB_ASSIGN_OR_RETURN(BatPtr b, CalcYear(a[0].bat()));
      out.emplace_back(std::move(b));
      break;
    }
    case Opcode::kCmpEq:
    case Opcode::kCmpNe:
    case Opcode::kCmpLt:
    case Opcode::kCmpLe:
    case Opcode::kCmpGt:
    case Opcode::kCmpGe: {
      RDB_ASSIGN_OR_RETURN(BatPtr b,
                           CalcCmp(CmpOpOf(ins.op), a[0].bat(), a[1].bat()));
      out.emplace_back(std::move(b));
      break;
    }
    case Opcode::kSortTail: {
      RDB_ASSIGN_OR_RETURN(BatPtr b, SortTail(a[0].bat()));
      out.emplace_back(std::move(b));
      break;
    }
    case Opcode::kSortTailRev: {
      RDB_ASSIGN_OR_RETURN(BatPtr b, SortTailRev(a[0].bat()));
      out.emplace_back(std::move(b));
      break;
    }
    case Opcode::kScalarMul:
      out.emplace_back(
          Scalar::Dbl(a[0].scalar().ToDouble() * a[1].scalar().ToDouble()));
      break;
    case Opcode::kAddMonths:
      out.emplace_back(Scalar::DateVal(
          AddMonths(a[0].scalar().AsDate(), a[1].scalar().AsInt())));
      break;
    case Opcode::kAddDays:
      out.emplace_back(Scalar::DateVal(
          AddDays(a[0].scalar().AsDate(), a[1].scalar().AsInt())));
      break;
    case Opcode::kExportValue:
      result->values.emplace_back(a[1].scalar().AsStr(), a[0]);
      break;
    case Opcode::kExportBat:
      result->values.emplace_back(a[1].scalar().AsStr(), a[0]);
      break;
  }
  return out;
}

Result<QueryResult> Interpreter::Run(const Program& prog,
                                     const std::vector<Scalar>& params) {
  if (static_cast<int>(params.size()) != prog.num_params)
    return Status::InvalidArgument("parameter count mismatch");
  StopWatch total;
  last_run_ = RunStats();

  std::vector<MalValue> stack(prog.vars.size());
  std::vector<std::vector<ColumnId>> deps(prog.vars.size());
  for (size_t i = 0; i < prog.vars.size(); ++i) {
    if (prog.vars[i].is_const) stack[i] = prog.vars[i].const_val;
  }
  for (int i = 0; i < prog.num_params; ++i) stack[i] = params[i];

  QueryResult result;
  if (recycler_) recycler_->BeginQuery(prog);

  std::vector<MalValue> args;
  for (size_t pc = 0; pc < prog.instrs.size(); ++pc) {
    const Instruction& ins = prog.instrs[pc];
    args.clear();
    for (uint16_t ai : ins.args) args.push_back(stack[ai]);

    // Dependency propagation: results derive from all bat arguments plus
    // whatever the instruction touches directly (bind/bindIdx).
    std::vector<ColumnId> instr_deps;
    for (uint16_t ai : ins.args) MergeDeps(&instr_deps, deps[ai]);
    if (ins.op == Opcode::kBind) {
      auto cid = snapshot_ != nullptr
                     ? snapshot_->GetColumnId(args[1].scalar().AsStr(),
                                              args[2].scalar().AsStr())
                     : catalog_->GetColumnId(args[1].scalar().AsStr(),
                                             args[2].scalar().AsStr());
      if (cid.ok()) instr_deps.push_back(cid.value());
    } else if (ins.op == Opcode::kBindIdx) {
      auto cid = snapshot_ != nullptr
                     ? snapshot_->GetIndexId(args[2].scalar().AsStr())
                     : catalog_->GetIndexId(args[2].scalar().AsStr());
      if (cid.ok()) instr_deps.push_back(cid.value());
    }
    std::sort(instr_deps.begin(), instr_deps.end());
    instr_deps.erase(std::unique(instr_deps.begin(), instr_deps.end()),
                     instr_deps.end());

    ++last_run_.instrs;
    RecyclerHook::InstrView view{&prog, static_cast<int>(pc), ins.op, &args};

    std::vector<MalValue> rets;
    bool reused = false;
    if (recycler_ && ins.monitored) {
      ++last_run_.monitored;
      reused = recycler_->OnEntry(view, &rets);
      if (reused) ++last_run_.pool_hits;
    }
    if (!reused) {
      StopWatch sw;
      auto r = ExecInstr(ins, args, &result);
      if (!r.ok()) {
        if (recycler_) recycler_->EndQuery();
        return r.status();
      }
      rets = std::move(r).value();
      double ms = sw.ElapsedMillis();
      last_run_.exec_ms += ms;
      if (ins.monitored) last_run_.monitored_exec_ms += ms;
      if (recycler_ && ins.monitored) {
        recycler_->OnExit(view, rets, ms, instr_deps);
      }
    }

    RDB_CHECK(rets.size() == ins.rets.size());
    for (size_t k = 0; k < rets.size(); ++k) {
      stack[ins.rets[k]] = std::move(rets[k]);
      deps[ins.rets[k]] = instr_deps;
    }
  }

  if (recycler_) recycler_->EndQuery();
  last_run_.wall_ms = total.ElapsedMillis();
  return result;
}

}  // namespace recycledb
