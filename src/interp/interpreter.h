#ifndef RECYCLEDB_INTERP_INTERPRETER_H_
#define RECYCLEDB_INTERP_INTERPRETER_H_

#include <vector>

#include "catalog/catalog.h"
#include "interp/query_result.h"
#include "interp/recycler_hook.h"
#include "mal/program.h"

namespace recycledb {

/// Per-invocation execution statistics.
struct RunStats {
  double wall_ms = 0;        ///< total invocation time
  int instrs = 0;            ///< instructions interpreted
  int monitored = 0;         ///< instructions wrapped by the recycler
  int pool_hits = 0;         ///< instructions answered from the pool
  double exec_ms = 0;        ///< time spent actually executing instructions
  double monitored_exec_ms = 0;  ///< execution time inside monitored instrs
};

/// The linear MAL interpreter (paper §2.2): executes a query template
/// bottom-up, one fully materialising operator at a time. If a RecyclerHook
/// is attached, instructions marked by the recycler optimiser are wrapped
/// with recycleEntry/recycleExit per Algorithm 1.
class Interpreter {
 public:
  explicit Interpreter(Catalog* catalog, RecyclerHook* recycler = nullptr)
      : catalog_(catalog), recycler_(recycler) {}

  /// Runs `prog` with positional parameter values. Thread-compatible: one
  /// interpreter per thread.
  Result<QueryResult> Run(const Program& prog,
                          const std::vector<Scalar>& params);

  /// Pins the catalog snapshot the NEXT Run() calls resolve binds and
  /// dependency ids against (null, the default, reads the live catalog —
  /// pre-MVCC behaviour, requiring external serialisation against commits).
  /// With a snapshot pinned, Run() never touches the mutable catalog: it is
  /// safe concurrently with commits without any lock. The caller keeps the
  /// snapshot alive across the run.
  void set_snapshot(const CatalogSnapshot* snapshot) { snapshot_ = snapshot; }

  const RunStats& last_run() const { return last_run_; }

 private:
  Result<std::vector<MalValue>> ExecInstr(const Instruction& ins,
                                          const std::vector<MalValue>& args,
                                          QueryResult* result);

  Catalog* catalog_;
  RecyclerHook* recycler_;
  const CatalogSnapshot* snapshot_ = nullptr;
  RunStats last_run_;
};

}  // namespace recycledb

#endif  // RECYCLEDB_INTERP_INTERPRETER_H_
