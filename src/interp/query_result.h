#ifndef RECYCLEDB_INTERP_QUERY_RESULT_H_
#define RECYCLEDB_INTERP_QUERY_RESULT_H_

#include <memory>
#include <string>
#include <vector>

#include "mal/value.h"
#include "obs/trace.h"

namespace recycledb {

/// Result set assembled by sql.exportValue / sql.exportResult instructions.
struct QueryResult {
  std::vector<std::pair<std::string, MalValue>> values;

  /// The query's trace when it ran traced (explicit TRACE SELECT or 1-in-N
  /// sampling); null otherwise. Immutable once the result is handed out.
  std::shared_ptr<const obs::QueryTrace> trace;

  const MalValue* Find(const std::string& label) const {
    for (const auto& [l, v] : values) {
      if (l == label) return &v;
    }
    return nullptr;
  }

  std::string ToString() const {
    std::string out;
    for (const auto& [l, v] : values) {
      out += l;
      out += " = ";
      out += v.ToString();
      out += "\n";
    }
    return out;
  }
};

}  // namespace recycledb

#endif  // RECYCLEDB_INTERP_QUERY_RESULT_H_
