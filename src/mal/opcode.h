#ifndef RECYCLEDB_MAL_OPCODE_H_
#define RECYCLEDB_MAL_OPCODE_H_

#include <cstdint>

namespace recycledb {

/// MAL instruction set of the abstract relational-algebra machine. Mirrors
/// the subset of MonetDB's MAL used by the paper's plans (Fig. 1) plus the
/// grouping/aggregation and calc instructions TPC-H needs.
enum class Opcode : uint8_t {
  // data access
  kBind,     // (schema:str, table:str, column:str, access:int) -> bat
  kBindIdx,  // (schema:str, table:str, index:str) -> bat

  // selections
  kSelect,       // (b, lo, hi, li:bit, hi:bit) -> bat
  kUselect,      // (b, v) -> bat
  kAntiUselect,  // (b, v) -> bat
  kLikeSelect,   // (b, pattern:str) -> bat
  kSelectNotNil, // (b) -> bat

  // joins
  kJoin,          // (l, r) -> bat
  kSemijoin,      // (l, r) -> bat
  kAntiSemijoin,  // (l, r) -> bat

  // viewpoints (zero cost)
  kMarkT,    // (b, base:oid) -> bat
  kReverse,  // (b) -> bat
  kMirror,   // (b) -> bat
  kSlice,    // (b, lo:lng, hi:lng) -> bat

  // distinct / grouping
  kKunique,     // (b) -> bat
  kGroupBy,     // (keys) -> (map, reps)
  kSubGroupBy,  // (keys, prev_map) -> (map, reps)

  // scalar aggregates over a bat
  kAggrCount,  // (b) -> lng
  kAggrSum,    // (b) -> lng/dbl
  kAggrMin,
  kAggrMax,
  kAggrAvg,

  // per-group aggregates: (vals, map, reps) -> bat[gid -> agg]
  kGrpCount,
  kGrpSum,
  kGrpMin,
  kGrpMax,
  kGrpAvg,

  // element-wise calc: (l, r) where either side may be a scalar
  kCalcAdd,
  kCalcSub,
  kCalcMul,
  kCalcDiv,

  // date-year extraction over a bat -> bat[int]
  kCalcYear,

  // element-wise compare over two bats -> bat[bit]
  kCmpEq,
  kCmpNe,
  kCmpLt,
  kCmpLe,
  kCmpGt,
  kCmpGe,

  // ordering
  kSortTail,     // (b) -> bat sorted ascending by tail
  kSortTailRev,  // (b) -> bat sorted descending by tail

  // scalar arithmetic (deterministic, never monitored)
  kScalarMul,  // (a, b) -> dbl scalar product

  // scalar date arithmetic (deterministic, never monitored)
  kAddMonths,  // (d:date, n:int) -> date
  kAddDays,    // (d:date, n:int) -> date

  // result-set construction (side effects, never monitored)
  kExportValue,  // (v, label:str)
  kExportBat,    // (b, label:str)
};

/// MAL-style dotted name, e.g. "algebra.select".
const char* OpcodeName(Opcode op);

/// Whether the recycler optimiser may mark this instruction for monitoring
/// (paper §3.1): relational operators over bats qualify; cheap scalar
/// expressions and side-effecting instructions do not.
bool OpcodeMonitorable(Opcode op);

/// Whether the instruction only materialises a new viewpoint (paper §2.3):
/// used for Table III-style memory accounting and admission heuristics.
bool OpcodeZeroCost(Opcode op);

/// Deterministic: same arguments always produce the same value, so the
/// recycling-candidate property propagates through it even when it is not
/// itself monitored (e.g., mtime.addmonths feeding a select bound).
bool OpcodeDeterministic(Opcode op);

/// Number of result variables (GroupBy-family instructions return two).
int OpcodeNumResults(Opcode op);

}  // namespace recycledb

#endif  // RECYCLEDB_MAL_OPCODE_H_
