#ifndef RECYCLEDB_MAL_VALUE_H_
#define RECYCLEDB_MAL_VALUE_H_

#include <string>
#include <variant>

#include "bat/bat.h"
#include "bat/scalar.h"

namespace recycledb {

/// A MAL runtime value: either a scalar or a BAT reference.
///
/// Equality semantics follow the recycler's matching rule (paper §3.3):
/// scalars compare by value (possible at run time because all arguments are
/// known), while BAT arguments compare by *identity* — two bats match only
/// if they are the same materialised intermediate, which the bottom-up
/// sequence matching guarantees for preserved lineages (§4.1).
class MalValue {
 public:
  MalValue() = default;
  MalValue(Scalar s) : v_(std::move(s)) {}  // NOLINT: implicit by design
  MalValue(BatPtr b) : v_(std::move(b)) {}  // NOLINT

  bool is_bat() const { return std::holds_alternative<BatPtr>(v_); }
  const BatPtr& bat() const { return std::get<BatPtr>(v_); }
  const Scalar& scalar() const { return std::get<Scalar>(v_); }

  /// Matching equality: scalar by value, bat by identity.
  bool MatchEq(const MalValue& o) const {
    if (is_bat() != o.is_bat()) return false;
    if (is_bat()) return bat()->id() == o.bat()->id();
    return scalar() == o.scalar();
  }

  size_t MatchHash() const {
    if (is_bat()) return std::hash<uint64_t>()(bat()->id()) ^ 0x5bd1e995u;
    return scalar().Hash();
  }

  std::string ToString() const {
    if (is_bat()) return bat()->ToString(4);
    return scalar().ToString();
  }

 private:
  std::variant<Scalar, BatPtr> v_;
};

}  // namespace recycledb

#endif  // RECYCLEDB_MAL_VALUE_H_
