#ifndef RECYCLEDB_MAL_PROGRAM_H_
#define RECYCLEDB_MAL_PROGRAM_H_

#include <cstdint>
#include <string>
#include <vector>

#include "bat/scalar.h"
#include "mal/opcode.h"

namespace recycledb {

/// A program variable: query-template parameter, interned constant, or the
/// result of an instruction.
struct VarDecl {
  std::string name;
  bool is_const = false;
  bool is_param = false;
  Scalar const_val;  ///< valid iff is_const
};

/// One MAL instruction: `rets := op(args)`. Arguments and results are
/// indices into the program's variable table.
struct Instruction {
  Opcode op;
  std::vector<uint16_t> args;
  std::vector<uint16_t> rets;

  /// Set by the recycler optimiser (§3.1): the interpreter wraps marked
  /// instructions with recycleEntry/recycleExit.
  bool monitored = false;

  /// True when the instruction's value is independent of the template
  /// parameters (the dark nodes of Fig. 2): reusable across any instance of
  /// the template.
  bool param_independent = false;
};

/// A compiled query template: a linear MAL function with literal constants
/// factored out into parameters (paper §2.2). Templates are immutable after
/// optimisation and shared across invocations via the template cache.
struct Program {
  std::string name;
  uint64_t template_id = 0;  ///< unique; keys the recycler's credit ledger
  std::vector<VarDecl> vars;
  std::vector<Instruction> instrs;
  int num_params = 0;  ///< vars[0 .. num_params-1] are the parameters

  /// Pretty-prints a Fig. 1-style MAL listing. When `show_marks` is set,
  /// monitored instructions are prefixed with `*` (param-independent ones
  /// with `**`), mirroring the shading of Fig. 2.
  std::string ToString(bool show_marks = false) const;

  /// Number of instructions currently marked for monitoring.
  int MonitoredCount() const;
};

}  // namespace recycledb

#endif  // RECYCLEDB_MAL_PROGRAM_H_
