#include "mal/opcode.h"

namespace recycledb {

const char* OpcodeName(Opcode op) {
  switch (op) {
    case Opcode::kBind:
      return "sql.bind";
    case Opcode::kBindIdx:
      return "sql.bindIdxbat";
    case Opcode::kSelect:
      return "algebra.select";
    case Opcode::kUselect:
      return "algebra.uselect";
    case Opcode::kAntiUselect:
      return "algebra.antiuselect";
    case Opcode::kLikeSelect:
      return "algebra.likeselect";
    case Opcode::kSelectNotNil:
      return "algebra.selectNotNil";
    case Opcode::kJoin:
      return "algebra.join";
    case Opcode::kSemijoin:
      return "algebra.semijoin";
    case Opcode::kAntiSemijoin:
      return "algebra.antisemijoin";
    case Opcode::kMarkT:
      return "algebra.markT";
    case Opcode::kReverse:
      return "bat.reverse";
    case Opcode::kMirror:
      return "bat.mirror";
    case Opcode::kSlice:
      return "algebra.slice";
    case Opcode::kKunique:
      return "algebra.kunique";
    case Opcode::kGroupBy:
      return "group.new";
    case Opcode::kSubGroupBy:
      return "group.refine";
    case Opcode::kAggrCount:
      return "aggr.count";
    case Opcode::kAggrSum:
      return "aggr.sum";
    case Opcode::kAggrMin:
      return "aggr.min";
    case Opcode::kAggrMax:
      return "aggr.max";
    case Opcode::kAggrAvg:
      return "aggr.avg";
    case Opcode::kGrpCount:
      return "aggr.count_grp";
    case Opcode::kGrpSum:
      return "aggr.sum_grp";
    case Opcode::kGrpMin:
      return "aggr.min_grp";
    case Opcode::kGrpMax:
      return "aggr.max_grp";
    case Opcode::kGrpAvg:
      return "aggr.avg_grp";
    case Opcode::kCalcAdd:
      return "batcalc.add";
    case Opcode::kCalcSub:
      return "batcalc.sub";
    case Opcode::kCalcMul:
      return "batcalc.mul";
    case Opcode::kCalcDiv:
      return "batcalc.div";
    case Opcode::kCalcYear:
      return "batmtime.year";
    case Opcode::kCmpEq:
      return "batcalc.eq";
    case Opcode::kCmpNe:
      return "batcalc.ne";
    case Opcode::kCmpLt:
      return "batcalc.lt";
    case Opcode::kCmpLe:
      return "batcalc.le";
    case Opcode::kCmpGt:
      return "batcalc.gt";
    case Opcode::kCmpGe:
      return "batcalc.ge";
    case Opcode::kSortTail:
      return "algebra.sortTail";
    case Opcode::kSortTailRev:
      return "algebra.sortReverseTail";
    case Opcode::kScalarMul:
      return "calc.mul";
    case Opcode::kAddMonths:
      return "mtime.addmonths";
    case Opcode::kAddDays:
      return "mtime.adddays";
    case Opcode::kExportValue:
      return "sql.exportValue";
    case Opcode::kExportBat:
      return "sql.exportResult";
  }
  return "?";
}

bool OpcodeMonitorable(Opcode op) {
  switch (op) {
    case Opcode::kScalarMul:
    case Opcode::kAddMonths:
    case Opcode::kAddDays:
    case Opcode::kExportValue:
    case Opcode::kExportBat:
      return false;
    default:
      return true;
  }
}

bool OpcodeZeroCost(Opcode op) {
  switch (op) {
    case Opcode::kBind:
    case Opcode::kBindIdx:
    case Opcode::kMarkT:
    case Opcode::kReverse:
    case Opcode::kMirror:
    case Opcode::kSlice:
      return true;
    default:
      return false;
  }
}

bool OpcodeDeterministic(Opcode op) {
  switch (op) {
    case Opcode::kExportValue:
    case Opcode::kExportBat:
      return false;
    default:
      return true;
  }
}

int OpcodeNumResults(Opcode op) {
  switch (op) {
    case Opcode::kGroupBy:
    case Opcode::kSubGroupBy:
      return 2;
    case Opcode::kExportValue:
    case Opcode::kExportBat:
      return 0;
    default:
      return 1;
  }
}

}  // namespace recycledb
