#ifndef RECYCLEDB_MAL_PLAN_BUILDER_H_
#define RECYCLEDB_MAL_PLAN_BUILDER_H_

#include <map>
#include <string>
#include <utility>

#include "mal/program.h"

namespace recycledb {

/// Builds MAL query templates programmatically. This plays the role of the
/// SQL front-end in the paper: literal constants become parameters, constants
/// are interned, and the result is a linear Program ready for the recycler
/// optimiser.
///
/// All methods return the variable index of the (first) result.
class PlanBuilder {
 public:
  explicit PlanBuilder(std::string name);

  /// Declares a template parameter (call before any instruction). Parameters
  /// are bound positionally at Run() time.
  int Param(const std::string& name);

  /// Interns a constant; equal constants share one variable.
  int Const(Scalar v);

  // Convenience constant helpers.
  int ConstInt(int32_t v) { return Const(Scalar::Int(v)); }
  int ConstLng(int64_t v) { return Const(Scalar::Lng(v)); }
  int ConstDbl(double v) { return Const(Scalar::Dbl(v)); }
  int ConstStr(std::string v) { return Const(Scalar::Str(std::move(v))); }
  int ConstDate(DateT v) { return Const(Scalar::DateVal(v)); }
  int ConstOid(Oid v) { return Const(Scalar::OidVal(v)); }
  int ConstBit(bool v) { return Const(Scalar::Bit(v)); }
  int NilConst(TypeTag t) { return Const(Scalar::Nil(t)); }

  // --- data access ---------------------------------------------------------
  int Bind(const std::string& table, const std::string& column);
  int BindIdx(const std::string& table, const std::string& index);

  // --- selections ----------------------------------------------------------
  int Select(int b, int lo, int hi, bool lo_inc = true, bool hi_inc = true);
  int Uselect(int b, int v);
  int AntiUselect(int b, int v);
  int LikeSelect(int b, int pattern);
  int SelectNotNil(int b);

  // --- joins ---------------------------------------------------------------
  int Join(int l, int r);
  int Semijoin(int l, int r);
  int AntiSemijoin(int l, int r);

  // --- viewpoints ----------------------------------------------------------
  int MarkT(int b, Oid base = 0);
  int Reverse(int b);
  int Mirror(int b);
  int SliceN(int b, int64_t lo, int64_t hi);

  // --- candidate-list idioms (Fig. 1) --------------------------------------
  // Shared by the SQL planner and the hand-built templates; the recycler's
  // cross-template pool hits rely on every producer emitting these
  // byte-identical instruction shapes.

  /// Selection subset [row -> v] => dense candidate list [cand -> row].
  int Recand(int subset) { return Reverse(MarkT(subset, 0)); }

  /// Renumbers a filtered candidate list [cand -> row] => [cand' -> row]
  /// with a fresh dense head.
  int Rebase(int cand) { return Reverse(MarkT(Reverse(cand), 0)); }

  // --- distinct / grouping -------------------------------------------------
  int Kunique(int b);
  /// Returns (map, reps).
  std::pair<int, int> GroupBy(int keys);
  std::pair<int, int> SubGroupBy(int keys, int prev_map);

  // --- aggregates ----------------------------------------------------------
  int AggrCount(int b);
  int AggrSum(int b);
  int AggrMin(int b);
  int AggrMax(int b);
  int AggrAvg(int b);
  int GrpCount(int vals, int map, int reps);
  int GrpSum(int vals, int map, int reps);
  int GrpMin(int vals, int map, int reps);
  int GrpMax(int vals, int map, int reps);
  int GrpAvg(int vals, int map, int reps);

  // --- calc ----------------------------------------------------------------
  int Add(int l, int r);
  int Sub(int l, int r);
  int Mul(int l, int r);
  int Div(int l, int r);
  int Year(int b);
  int CmpEq(int l, int r);
  int CmpNe(int l, int r);
  int CmpLt(int l, int r);
  int CmpLe(int l, int r);
  int CmpGt(int l, int r);
  int CmpGe(int l, int r);

  // --- ordering ------------------------------------------------------------
  int SortTail(int b);
  int SortTailRev(int b);

  // --- scalar arithmetic -----------------------------------------------------
  int ScalarMul(int l, int r);

  // --- scalar date arithmetic ----------------------------------------------
  int AddMonths(int date, int months);
  int AddDays(int date, int days);

  // --- result set ----------------------------------------------------------
  void ExportValue(int v, const std::string& label);
  void ExportBat(int b, const std::string& label);

  /// Finalises the template. The builder must not be reused afterwards.
  Program Build();

 private:
  int NewVar();
  int Emit(Opcode op, std::vector<uint16_t> args, int nrets = -1);

  Program prog_;
  std::map<std::pair<int, std::string>, int> const_pool_;  // (tag, repr) -> var
  int next_tmp_ = 0;
  bool params_closed_ = false;
};

}  // namespace recycledb

#endif  // RECYCLEDB_MAL_PLAN_BUILDER_H_
