#include "mal/program.h"

#include <sstream>

namespace recycledb {

std::string Program::ToString(bool show_marks) const {
  std::ostringstream os;
  os << "function " << name << "(";
  for (int i = 0; i < num_params; ++i) {
    if (i) os << ", ";
    os << vars[i].name;
  }
  os << "):\n";
  for (const Instruction& ins : instrs) {
    os << "  ";
    if (show_marks) {
      if (ins.monitored && ins.param_independent)
        os << "** ";
      else if (ins.monitored)
        os << "*  ";
      else
        os << "   ";
    }
    for (size_t i = 0; i < ins.rets.size(); ++i) {
      if (i) os << ", ";
      os << vars[ins.rets[i]].name;
    }
    if (!ins.rets.empty()) os << " := ";
    os << OpcodeName(ins.op) << "(";
    for (size_t i = 0; i < ins.args.size(); ++i) {
      if (i) os << ", ";
      const VarDecl& v = vars[ins.args[i]];
      if (v.is_const)
        os << v.const_val.ToString();
      else
        os << v.name;
    }
    os << ");\n";
  }
  os << "end " << name << ";\n";
  return os.str();
}

int Program::MonitoredCount() const {
  int n = 0;
  for (const Instruction& ins : instrs) n += ins.monitored ? 1 : 0;
  return n;
}

}  // namespace recycledb
