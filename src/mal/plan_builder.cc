#include "mal/plan_builder.h"

#include <atomic>

#include "util/check.h"
#include "util/str.h"

namespace recycledb {

namespace {
std::atomic<uint64_t> next_template_id{1};
}  // namespace

PlanBuilder::PlanBuilder(std::string name) {
  prog_.name = std::move(name);
  prog_.template_id = next_template_id.fetch_add(1);
}

int PlanBuilder::NewVar() {
  int idx = static_cast<int>(prog_.vars.size());
  RDB_CHECK(idx < 65535);
  VarDecl v;
  v.name = StrFormat("X%d", next_tmp_++);
  prog_.vars.push_back(std::move(v));
  return idx;
}

int PlanBuilder::Param(const std::string& name) {
  RDB_CHECK(!params_closed_);
  int idx = static_cast<int>(prog_.vars.size());
  VarDecl v;
  v.name = name.empty() ? StrFormat("A%d", prog_.num_params) : name;
  v.is_param = true;
  prog_.vars.push_back(std::move(v));
  prog_.num_params++;
  return idx;
}

int PlanBuilder::Const(Scalar s) {
  params_closed_ = true;
  auto key = std::make_pair(static_cast<int>(s.tag()), s.ToString());
  auto it = const_pool_.find(key);
  if (it != const_pool_.end()) return it->second;
  int idx = static_cast<int>(prog_.vars.size());
  VarDecl v;
  v.name = StrFormat("TMP%d", static_cast<int>(const_pool_.size()));
  v.is_const = true;
  v.const_val = std::move(s);
  prog_.vars.push_back(std::move(v));
  const_pool_.emplace(key, idx);
  return idx;
}

int PlanBuilder::Emit(Opcode op, std::vector<uint16_t> args, int nrets) {
  params_closed_ = true;
  if (nrets < 0) nrets = OpcodeNumResults(op);
  Instruction ins;
  ins.op = op;
  ins.args = std::move(args);
  int first = -1;
  for (int i = 0; i < nrets; ++i) {
    int v = NewVar();
    if (first < 0) first = v;
    ins.rets.push_back(static_cast<uint16_t>(v));
  }
  prog_.instrs.push_back(std::move(ins));
  return first;
}

static uint16_t U16(int v) {
  RDB_CHECK(v >= 0 && v < 65536);
  return static_cast<uint16_t>(v);
}

int PlanBuilder::Bind(const std::string& table, const std::string& column) {
  int s = ConstStr("sys");
  int t = ConstStr(table);
  int c = ConstStr(column);
  int a = ConstInt(0);
  return Emit(Opcode::kBind, {U16(s), U16(t), U16(c), U16(a)});
}

int PlanBuilder::BindIdx(const std::string& table, const std::string& index) {
  int s = ConstStr("sys");
  int t = ConstStr(table);
  int i = ConstStr(index);
  return Emit(Opcode::kBindIdx, {U16(s), U16(t), U16(i)});
}

int PlanBuilder::Select(int b, int lo, int hi, bool lo_inc, bool hi_inc) {
  int li = ConstBit(lo_inc);
  int hinc = ConstBit(hi_inc);
  return Emit(Opcode::kSelect, {U16(b), U16(lo), U16(hi), U16(li), U16(hinc)});
}

int PlanBuilder::Uselect(int b, int v) {
  return Emit(Opcode::kUselect, {U16(b), U16(v)});
}

int PlanBuilder::AntiUselect(int b, int v) {
  return Emit(Opcode::kAntiUselect, {U16(b), U16(v)});
}

int PlanBuilder::LikeSelect(int b, int pattern) {
  return Emit(Opcode::kLikeSelect, {U16(b), U16(pattern)});
}

int PlanBuilder::SelectNotNil(int b) {
  return Emit(Opcode::kSelectNotNil, {U16(b)});
}

int PlanBuilder::Join(int l, int r) {
  return Emit(Opcode::kJoin, {U16(l), U16(r)});
}

int PlanBuilder::Semijoin(int l, int r) {
  return Emit(Opcode::kSemijoin, {U16(l), U16(r)});
}

int PlanBuilder::AntiSemijoin(int l, int r) {
  return Emit(Opcode::kAntiSemijoin, {U16(l), U16(r)});
}

int PlanBuilder::MarkT(int b, Oid base) {
  int c = ConstOid(base);
  return Emit(Opcode::kMarkT, {U16(b), U16(c)});
}

int PlanBuilder::Reverse(int b) { return Emit(Opcode::kReverse, {U16(b)}); }

int PlanBuilder::Mirror(int b) { return Emit(Opcode::kMirror, {U16(b)}); }

int PlanBuilder::SliceN(int b, int64_t lo, int64_t hi) {
  int l = ConstLng(lo);
  int h = ConstLng(hi);
  return Emit(Opcode::kSlice, {U16(b), U16(l), U16(h)});
}

int PlanBuilder::Kunique(int b) { return Emit(Opcode::kKunique, {U16(b)}); }

std::pair<int, int> PlanBuilder::GroupBy(int keys) {
  int first = Emit(Opcode::kGroupBy, {U16(keys)});
  return {first, first + 1};
}

std::pair<int, int> PlanBuilder::SubGroupBy(int keys, int prev_map) {
  int first = Emit(Opcode::kSubGroupBy, {U16(keys), U16(prev_map)});
  return {first, first + 1};
}

int PlanBuilder::AggrCount(int b) { return Emit(Opcode::kAggrCount, {U16(b)}); }
int PlanBuilder::AggrSum(int b) { return Emit(Opcode::kAggrSum, {U16(b)}); }
int PlanBuilder::AggrMin(int b) { return Emit(Opcode::kAggrMin, {U16(b)}); }
int PlanBuilder::AggrMax(int b) { return Emit(Opcode::kAggrMax, {U16(b)}); }
int PlanBuilder::AggrAvg(int b) { return Emit(Opcode::kAggrAvg, {U16(b)}); }

int PlanBuilder::GrpCount(int vals, int map, int reps) {
  return Emit(Opcode::kGrpCount, {U16(vals), U16(map), U16(reps)});
}
int PlanBuilder::GrpSum(int vals, int map, int reps) {
  return Emit(Opcode::kGrpSum, {U16(vals), U16(map), U16(reps)});
}
int PlanBuilder::GrpMin(int vals, int map, int reps) {
  return Emit(Opcode::kGrpMin, {U16(vals), U16(map), U16(reps)});
}
int PlanBuilder::GrpMax(int vals, int map, int reps) {
  return Emit(Opcode::kGrpMax, {U16(vals), U16(map), U16(reps)});
}
int PlanBuilder::GrpAvg(int vals, int map, int reps) {
  return Emit(Opcode::kGrpAvg, {U16(vals), U16(map), U16(reps)});
}

int PlanBuilder::Add(int l, int r) {
  return Emit(Opcode::kCalcAdd, {U16(l), U16(r)});
}
int PlanBuilder::Sub(int l, int r) {
  return Emit(Opcode::kCalcSub, {U16(l), U16(r)});
}
int PlanBuilder::Mul(int l, int r) {
  return Emit(Opcode::kCalcMul, {U16(l), U16(r)});
}
int PlanBuilder::Div(int l, int r) {
  return Emit(Opcode::kCalcDiv, {U16(l), U16(r)});
}
int PlanBuilder::Year(int b) { return Emit(Opcode::kCalcYear, {U16(b)}); }

int PlanBuilder::CmpEq(int l, int r) {
  return Emit(Opcode::kCmpEq, {U16(l), U16(r)});
}
int PlanBuilder::CmpNe(int l, int r) {
  return Emit(Opcode::kCmpNe, {U16(l), U16(r)});
}
int PlanBuilder::CmpLt(int l, int r) {
  return Emit(Opcode::kCmpLt, {U16(l), U16(r)});
}
int PlanBuilder::CmpLe(int l, int r) {
  return Emit(Opcode::kCmpLe, {U16(l), U16(r)});
}
int PlanBuilder::CmpGt(int l, int r) {
  return Emit(Opcode::kCmpGt, {U16(l), U16(r)});
}
int PlanBuilder::CmpGe(int l, int r) {
  return Emit(Opcode::kCmpGe, {U16(l), U16(r)});
}

int PlanBuilder::SortTail(int b) { return Emit(Opcode::kSortTail, {U16(b)}); }

int PlanBuilder::SortTailRev(int b) {
  return Emit(Opcode::kSortTailRev, {U16(b)});
}

int PlanBuilder::ScalarMul(int l, int r) {
  return Emit(Opcode::kScalarMul, {U16(l), U16(r)});
}

int PlanBuilder::AddMonths(int date, int months) {
  return Emit(Opcode::kAddMonths, {U16(date), U16(months)});
}

int PlanBuilder::AddDays(int date, int days) {
  return Emit(Opcode::kAddDays, {U16(date), U16(days)});
}

void PlanBuilder::ExportValue(int v, const std::string& label) {
  int l = ConstStr(label);
  Emit(Opcode::kExportValue, {U16(v), U16(l)});
}

void PlanBuilder::ExportBat(int b, const std::string& label) {
  int l = ConstStr(label);
  Emit(Opcode::kExportBat, {U16(b), U16(l)});
}

Program PlanBuilder::Build() { return std::move(prog_); }

}  // namespace recycledb
