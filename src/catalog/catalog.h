#ifndef RECYCLEDB_CATALOG_CATALOG_H_
#define RECYCLEDB_CATALOG_CATALOG_H_

#include <atomic>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "bat/bat.h"
#include "util/status.h"

namespace recycledb {

/// Identifies a persistent column (or a join index, which gets a pseudo
/// column id). The recycler tracks per-intermediate dependency sets of
/// ColumnIds to invalidate exactly the affected pool entries (paper §6.4:
/// column-wise immediate invalidation).
struct ColumnId {
  int32_t table = -1;
  int32_t col = -1;

  bool operator==(const ColumnId& o) const {
    return table == o.table && col == o.col;
  }
  bool operator<(const ColumnId& o) const {
    return table != o.table ? table < o.table : col < o.col;
  }
};

/// A persistent table: named, typed columns of equal length. Columns are
/// immutable snapshots; updates install fresh column objects (delta merge),
/// which is what lets bind caching + recycler invalidation stay consistent.
class Table {
 public:
  Table(int32_t id, std::string name) : id_(id), name_(std::move(name)) {}

  int32_t id() const { return id_; }
  const std::string& name() const { return name_; }
  size_t num_rows() const { return rows_; }
  size_t num_columns() const { return defs_.size(); }
  const std::string& column_name(int i) const { return defs_[i].name; }
  TypeTag column_type(int i) const { return defs_[i].type; }
  int FindColumn(const std::string& name) const;
  const ColumnPtr& column(int i) const { return cols_[i]; }

 private:
  friend class Catalog;
  struct ColumnDef {
    std::string name;
    TypeTag type;
  };

  int32_t id_;
  std::string name_;
  std::vector<ColumnDef> defs_;
  std::vector<ColumnPtr> cols_;
  size_t rows_ = 0;
};

/// An immutable view of the committed catalog at one snapshot epoch: every
/// loaded column and join index resolved to the BAT it had when the
/// snapshot was published. Snapshots are built through the catalog's bind
/// caches, so a column untouched between two epochs resolves to the *same*
/// BAT object in both snapshots — cross-epoch identity is what lets
/// epoch-tagged recycler entries keep matching for readers on older
/// snapshots.
///
/// A query that captured a snapshot resolves every bind and dependency id
/// through it and never touches the mutable catalog again: commits may
/// install new versions concurrently without the reader taking any lock.
class CatalogSnapshot {
 public:
  /// The monotonically increasing commit epoch this snapshot was published
  /// at (0 = the empty initial catalog).
  uint64_t epoch() const { return epoch_; }

  Result<BatPtr> BindColumn(const std::string& table,
                            const std::string& column) const;
  Result<BatPtr> BindIndex(const std::string& index) const;
  Result<ColumnId> GetColumnId(const std::string& table,
                               const std::string& column) const;
  Result<ColumnId> GetIndexId(const std::string& index) const;

 private:
  friend class Catalog;
  struct View {
    ColumnId id;
    BatPtr bat;
  };

  uint64_t epoch_ = 0;
  std::map<std::pair<std::string, std::string>, View> cols_;
  std::map<std::string, View> indices_;
};

using CatalogSnapshotPtr = std::shared_ptr<const CatalogSnapshot>;

/// Pending DML against one table: MonetDB-style insert/delete deltas that
/// are applied at commit (paper §6: delta-based update processing).
struct PendingDelta {
  std::vector<std::vector<Scalar>> inserts;  // row-major
  std::vector<Oid> deletes;                  // row oids in committed order
  bool Empty() const { return inserts.empty() && deletes.empty(); }
};

/// A transaction's private write set: per-table pending deltas accumulated
/// by INSERT/DELETE/UPDATE statements, invisible to every other session
/// until Catalog::CommitWrite installs them atomically. Delete oids are in
/// the row coordinates of the transaction's BEGIN snapshot; CommitWrite
/// remaps them through the commits that landed since (or fails with
/// WriteConflict when one of those commits touched the same row —
/// first-writer-wins). Discarding the object IS rollback: nothing in the
/// catalog ever saw it.
struct TxnWriteSet {
  /// The catalog epoch current when the transaction began; conflict
  /// detection considers exactly the commits published after it.
  uint64_t begin_epoch = 0;
  /// Per-table deltas, keyed by table id. Delete oids are begin-snapshot
  /// row coordinates, deduplicated and kept in queue order.
  std::map<int32_t, PendingDelta> deltas;
  /// Bumped on every mutation of the write set; sessions use it to cache
  /// the derived overlay snapshot across statements.
  uint64_t version = 0;

  bool Empty() const {
    for (const auto& [tid, d] : deltas) {
      if (!d.Empty()) return false;
    }
    return true;
  }
};

/// The database catalog: tables, persistent columns, foreign-key join
/// indices, and the update path. Bind results are cached so repeated binds
/// of an unchanged column return the *same* BAT object — persistent bats
/// have stable identity, which bottom-up sequence matching relies on.
///
/// Thread-safety: the read path (BindColumn, BindIndex, FindTable,
/// GetColumnId, GetIndexId, LastInsertDelta, LastCommitInsertOnly) is safe
/// to call from many threads concurrently — the bind caches, the only state
/// reads mutate, are guarded internally. DDL and the DML/Commit path mutate
/// tables and must be externally serialised against all readers;
/// QueryService enforces this with its update read-write lock.
class Catalog {
 public:
  Catalog();
  Catalog(const Catalog&) = delete;
  Catalog& operator=(const Catalog&) = delete;

  // --- DDL -----------------------------------------------------------------

  /// Creates an empty table; returns its id.
  int32_t CreateTable(const std::string& name,
                      const std::vector<std::pair<std::string, TypeTag>>& cols);

  /// Installs column data during bulk load. All columns must end up with
  /// equal length. T is the physical type of the declared column type.
  template <typename T>
  Status LoadColumn(const std::string& table, const std::string& column,
                    std::vector<T> data, bool sorted = false,
                    bool key = false);

  /// Registers a foreign-key join index `name`: for each row of
  /// `child_table`, the oid (position) of the matching `parent_table` row,
  /// computed by matching `child_key` to `parent_key`. Rebuilt on commit.
  Status RegisterFkIndex(const std::string& name, const std::string& child_table,
                         const std::string& child_key,
                         const std::string& parent_table,
                         const std::string& parent_key);

  Status DropTable(const std::string& name);

  // --- access --------------------------------------------------------------

  Result<BatPtr> BindColumn(const std::string& table,
                            const std::string& column);
  Result<BatPtr> BindIndex(const std::string& index);

  /// The newest published snapshot. Lock-free (atomic shared_ptr load) and
  /// safe to call concurrently with any mutator: mutators publish a fresh
  /// immutable snapshot as their last step, so a reader either sees the
  /// whole mutation or none of it. Never null.
  CatalogSnapshotPtr Snapshot() const;

  /// The current snapshot epoch: bumped once per published mutation
  /// (commit, DDL, bulk load). Exported as the `snapshot_epoch` gauge.
  uint64_t epoch() const { return epoch_.load(std::memory_order_acquire); }

  const Table* FindTable(const std::string& name) const;
  Result<ColumnId> GetColumnId(const std::string& table,
                               const std::string& column) const;
  /// The pseudo column id under which a join index registers.
  Result<ColumnId> GetIndexId(const std::string& index) const;

  /// The registered FK join index implementing the N:1 hop
  /// `child_table.child_col -> parent_table.parent_col`, by name. The SQL
  /// binder uses this to lower INNER JOIN ... ON clauses; like the other
  /// readers it must be externally serialised against DDL.
  Result<std::string> FindFkIndex(const std::string& child_table,
                                  const std::string& child_col,
                                  const std::string& parent_table,
                                  const std::string& parent_col) const;

  // --- DML (transaction write sets) ----------------------------------------

  /// Opens a write set at the current epoch. The single mutator entry point:
  /// every INSERT/DELETE/UPDATE accumulates in a write set and only
  /// CommitWrite touches the catalog. Lock-free (atomic epoch load).
  TxnWriteSet BeginWrite() const;

  /// Queues row inserts into the write set's delta for `table`. Only reads
  /// catalog schema — safe under a shared hold of the service's update lock,
  /// concurrently with other sessions' statements.
  Status Append(TxnWriteSet* ws, const std::string& table,
                std::vector<std::vector<Scalar>> rows);

  /// Queues row deletions by oid in the coordinates of the transaction's
  /// OVERLAY view (its begin snapshot with the write set's own deltas
  /// applied — what an in-transaction victim scan yields). `base` is the
  /// transaction's begin snapshot, which fixes the kept-row boundary (null:
  /// the live committed state is the base — the autocommit path, under the
  /// exclusive lock). Oids below the surviving-base-row count map back
  /// through the write set's queued deletes to begin-snapshot coordinates;
  /// oids beyond it un-queue the transaction's own pending inserts.
  /// `newly_queued`, when non-null, receives how many rows this call
  /// actually removed or queued.
  Status Delete(TxnWriteSet* ws, const std::string& table,
                std::vector<Oid> overlay_oids,
                const CatalogSnapshot* base = nullptr,
                size_t* newly_queued = nullptr);

  /// Installs the write set atomically: first-writer-wins conflict check
  /// (Status::WriteConflict when a commit after ws->begin_epoch deleted or
  /// updated one of ws's victim rows; the catalog is untouched on failure),
  /// then the delta merge — inserts appended, deletions compacted, join
  /// indices rebuilt, bind caches refreshed, the update listener notified
  /// ONCE with every invalidated ColumnId, and the next snapshot epoch
  /// published. The write set is cleared on success. Must be externally
  /// serialised like every mutator (the service's exclusive update lock).
  Status CommitWrite(TxnWriteSet* ws);

  /// The transaction's read view: `base` (its begin snapshot) with the
  /// write set's deltas merged in — fresh columns for every touched table
  /// (deleted rows compacted out, pending inserts appended) and join
  /// indices over touched tables rebuilt. Untouched tables keep the base
  /// snapshot's BATs (and their identities). Reads schema metadata, so the
  /// caller must hold the update lock shared; the returned snapshot carries
  /// the base epoch and is immutable like any other.
  Result<CatalogSnapshotPtr> OverlaySnapshot(const CatalogSnapshotPtr& base,
                                             const TxnWriteSet& ws);

  /// Insert deltas of the last committed transaction, per table/column —
  /// consumed by the recycler's update-propagation extension (§6.3).
  Result<BatPtr> LastInsertDelta(const std::string& table,
                                 const std::string& column) const;

  /// True iff the table's last commit consisted of inserts only (no
  /// deletions), which is the precondition for sound insert propagation.
  bool LastCommitInsertOnly(const std::string& table) const;

  /// What kind of mutation the update listener is being told about. Data
  /// commits change column contents but never plan shape (binds resolve by
  /// name at run time), so epoch-tagged caches can refresh instead of
  /// evict; schema changes (DropTable) make compiled artifacts over the
  /// touched tables structurally stale and force eviction.
  enum class UpdateKind { kData, kSchema };

  /// Registered listener receives the ColumnIds invalidated by a commit,
  /// plus whether the mutation was data-only or a schema change.
  void SetUpdateListener(
      std::function<void(const std::vector<ColumnId>&, UpdateKind)> fn) {
    listener_ = std::move(fn);
  }

  /// Whether an update listener is currently installed. QueryService uses
  /// this to reject a second service attaching to the same catalog, which
  /// would silently disconnect the first one's invalidation hook.
  bool HasUpdateListener() const { return static_cast<bool>(listener_); }

  size_t TotalPersistentBytes() const;

  /// Attaches compressed sidecars to the loaded persistent columns:
  /// frame-of-reference for integer/date/oid columns, dictionary for string
  /// columns, where profitable. The raw vectors stay in place — an attached
  /// encoding only gives the vectorised kernels a compressed representation
  /// to scan and TakeSide a code array to gather, so binds, accounting and
  /// results are unchanged. Serving-time only: call after bulk load and
  /// before queries run, under the same external serialisation as DDL
  /// (encodings are not maintained across commits; columns replaced by a
  /// delta merge simply lose their sidecar). Returns the number of columns
  /// that got an encoding.
  size_t BuildEncodings();

 private:
  struct FkIndex {
    std::string name;
    int32_t child_table, parent_table;
    int child_key, parent_key;
    ColumnPtr map;  // oid positions into parent, aligned with child rows
  };

  /// One committed transaction's effect on a table's row coordinates, kept
  /// for first-writer-wins conflict detection: a later CommitWrite whose
  /// write set began before `epoch` must remap its begin-coordinate victim
  /// oids through `deleted_sorted` (conflict when one matches; otherwise
  /// shift down by the deletions ordered before it). Insert-only commits
  /// never renumber or remove rows, so they are not recorded.
  struct CommitRecord {
    uint64_t epoch = 0;               ///< epoch the commit published
    std::vector<Oid> deleted_sorted;  ///< oids deleted, pre-commit coords
  };

  Status RebuildIndex(FkIndex* idx);
  /// Builds the [child row -> parent row] FK map by key matching; the
  /// overlay path reuses it over merged transaction-local columns.
  static ColumnPtr BuildFkMap(const ColumnPtr& child_key,
                              const ColumnPtr& parent_key);
  void InvalidateBindCache(int32_t table_id);
  /// Bumps the epoch and atomically installs a fresh immutable snapshot of
  /// every loaded column/index (resolved through the bind caches, so
  /// untouched data keeps its BAT identity across epochs). Called as the
  /// last step of every mutator, under the caller's external serialisation
  /// — in particular AFTER Commit fires the update listener, so pool and
  /// plan-cache maintenance is already done when the new epoch becomes
  /// visible to submissions.
  void PublishSnapshot();

  std::vector<std::unique_ptr<Table>> tables_;
  std::map<std::string, int32_t> table_by_name_;
  std::vector<FkIndex> indices_;
  std::map<std::string, int> index_by_name_;
  /// Per-table history of delete-carrying commits (bounded to
  /// kCommitHistoryCap entries, oldest pruned), plus the epoch floor below
  /// which history is no longer retained — a write set with deletes that
  /// began before the floor conflicts conservatively. Bulk loads reset the
  /// floor: they renumber rows without a commit record.
  std::map<int32_t, std::vector<CommitRecord>> commit_history_;
  std::map<int32_t, uint64_t> history_floor_;
  // Bind caches: stable BAT identities for persistent data. Guarded by
  // bind_mu_ so concurrent readers can populate them safely.
  mutable std::mutex bind_mu_;
  std::map<std::pair<int32_t, int>, BatPtr> bind_cache_;
  std::map<int, BatPtr> index_bind_cache_;
  std::function<void(const std::vector<ColumnId>&, UpdateKind)> listener_;
  // Last committed insert deltas: (table, col) -> delta bat with head oids
  // continuing the pre-commit row numbering.
  std::map<std::pair<int32_t, int>, BatPtr> last_insert_delta_;
  std::map<int32_t, bool> last_commit_insert_only_;
  /// MVCC state: the published-snapshot counter and the newest snapshot,
  /// accessed with the C++17 atomic shared_ptr free functions (readers are
  /// lock-free; writers are externally serialised like all mutators).
  std::atomic<uint64_t> epoch_{0};
  std::shared_ptr<const CatalogSnapshot> snapshot_;
};

/// Pseudo column id space for join indices: col = kIndexColBase + index slot.
inline constexpr int32_t kIndexColBase = 1 << 20;

/// Delete-carrying commits retained per table for conflict remapping; a
/// transaction older than the retained window conflicts conservatively.
inline constexpr size_t kCommitHistoryCap = 128;

}  // namespace recycledb

#endif  // RECYCLEDB_CATALOG_CATALOG_H_
