#include "catalog/catalog.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "util/check.h"
#include "util/str.h"

namespace recycledb {

Result<BatPtr> CatalogSnapshot::BindColumn(const std::string& table,
                                           const std::string& column) const {
  auto it = cols_.find({table, column});
  if (it == cols_.end())
    return Status::NotFound("column " + table + "." + column +
                            " (snapshot epoch " + std::to_string(epoch_) +
                            ")");
  return it->second.bat;
}

Result<BatPtr> CatalogSnapshot::BindIndex(const std::string& index) const {
  auto it = indices_.find(index);
  if (it == indices_.end())
    return Status::NotFound("index " + index + " (snapshot epoch " +
                            std::to_string(epoch_) + ")");
  return it->second.bat;
}

Result<ColumnId> CatalogSnapshot::GetColumnId(const std::string& table,
                                              const std::string& column) const {
  auto it = cols_.find({table, column});
  if (it == cols_.end())
    return Status::NotFound("column " + table + "." + column);
  return it->second.id;
}

Result<ColumnId> CatalogSnapshot::GetIndexId(const std::string& index) const {
  auto it = indices_.find(index);
  if (it == indices_.end()) return Status::NotFound("index " + index);
  return it->second.id;
}

Catalog::Catalog() : snapshot_(std::make_shared<CatalogSnapshot>()) {}

CatalogSnapshotPtr Catalog::Snapshot() const {
  return std::atomic_load(&snapshot_);
}

void Catalog::PublishSnapshot() {
  const uint64_t epoch = epoch_.fetch_add(1, std::memory_order_acq_rel) + 1;
  auto snap = std::make_shared<CatalogSnapshot>();
  snap->epoch_ = epoch;
  for (const auto& t : tables_) {
    if (!t) continue;
    for (size_t ci = 0; ci < t->num_columns(); ++ci) {
      if (t->column(ci) == nullptr) continue;  // mid-bulk-load
      auto bound = BindColumn(t->name(), t->column_name(static_cast<int>(ci)));
      if (!bound.ok()) continue;
      snap->cols_[{t->name(), t->column_name(static_cast<int>(ci))}] =
          CatalogSnapshot::View{{t->id(), static_cast<int32_t>(ci)},
                                std::move(bound).value()};
    }
  }
  for (size_t k = 0; k < indices_.size(); ++k) {
    auto bound = BindIndex(indices_[k].name);
    if (!bound.ok()) continue;
    snap->indices_[indices_[k].name] = CatalogSnapshot::View{
        {indices_[k].child_table, kIndexColBase + static_cast<int32_t>(k)},
        std::move(bound).value()};
  }
  std::atomic_store(&snapshot_,
                    std::shared_ptr<const CatalogSnapshot>(std::move(snap)));
}

int Table::FindColumn(const std::string& name) const {
  for (size_t i = 0; i < defs_.size(); ++i) {
    if (defs_[i].name == name) return static_cast<int>(i);
  }
  return -1;
}

int32_t Catalog::CreateTable(
    const std::string& name,
    const std::vector<std::pair<std::string, TypeTag>>& cols) {
  RDB_CHECK(table_by_name_.find(name) == table_by_name_.end());
  int32_t id = static_cast<int32_t>(tables_.size());
  auto t = std::make_unique<Table>(id, name);
  for (const auto& [cname, ctype] : cols) {
    t->defs_.push_back({cname, ctype});
    t->cols_.push_back(nullptr);
  }
  tables_.push_back(std::move(t));
  table_by_name_[name] = id;
  PublishSnapshot();
  return id;
}

template <typename T>
Status Catalog::LoadColumn(const std::string& table, const std::string& column,
                           std::vector<T> data, bool sorted, bool key) {
  const Table* tc = FindTable(table);
  if (tc == nullptr) return Status::NotFound("table " + table);
  Table* t = tables_[tc->id()].get();
  int ci = t->FindColumn(column);
  if (ci < 0) return Status::NotFound("column " + table + "." + column);
  auto col = Column::Make(t->defs_[ci].type, std::move(data));
  col->set_sorted(sorted);
  col->set_key(key);
  col->set_persistent(true);
  bool any_loaded = false;
  for (size_t k = 0; k < t->cols_.size(); ++k) {
    if (k != static_cast<size_t>(ci) && t->cols_[k] != nullptr)
      any_loaded = true;
  }
  if (!any_loaded) {
    t->rows_ = col->size();
  } else if (col->size() != t->rows_) {
    return Status::InvalidArgument(
        StrFormat("column %s.%s has %zu rows, table has %zu", table.c_str(),
                  column.c_str(), col->size(), t->rows_));
  }
  t->cols_[ci] = std::move(col);
  {
    std::lock_guard<std::mutex> lock(bind_mu_);
    bind_cache_.erase({t->id(), ci});
  }
  // A bulk load renumbers the table wholesale; transactions that began
  // before it cannot be remapped, so raise the conflict floor past the
  // epoch this publish is about to install.
  commit_history_.erase(t->id());
  history_floor_[t->id()] = epoch() + 1;
  PublishSnapshot();
  return Status::OK();
}

template Status Catalog::LoadColumn<int8_t>(const std::string&,
                                            const std::string&,
                                            std::vector<int8_t>, bool, bool);
template Status Catalog::LoadColumn<int32_t>(const std::string&,
                                             const std::string&,
                                             std::vector<int32_t>, bool, bool);
template Status Catalog::LoadColumn<int64_t>(const std::string&,
                                             const std::string&,
                                             std::vector<int64_t>, bool, bool);
template Status Catalog::LoadColumn<Oid>(const std::string&, const std::string&,
                                         std::vector<Oid>, bool, bool);
template Status Catalog::LoadColumn<double>(const std::string&,
                                            const std::string&,
                                            std::vector<double>, bool, bool);
template Status Catalog::LoadColumn<std::string>(const std::string&,
                                                 const std::string&,
                                                 std::vector<std::string>, bool,
                                                 bool);

Status Catalog::RegisterFkIndex(const std::string& name,
                                const std::string& child_table,
                                const std::string& child_key,
                                const std::string& parent_table,
                                const std::string& parent_key) {
  const Table* c = FindTable(child_table);
  const Table* p = FindTable(parent_table);
  if (c == nullptr || p == nullptr)
    return Status::NotFound("fk index tables");
  FkIndex idx;
  idx.name = name;
  idx.child_table = c->id();
  idx.parent_table = p->id();
  idx.child_key = c->FindColumn(child_key);
  idx.parent_key = p->FindColumn(parent_key);
  if (idx.child_key < 0 || idx.parent_key < 0)
    return Status::NotFound("fk index key columns");
  RDB_RETURN_NOT_OK(RebuildIndex(&idx));
  index_by_name_[name] = static_cast<int>(indices_.size());
  indices_.push_back(std::move(idx));
  PublishSnapshot();
  return Status::OK();
}

ColumnPtr Catalog::BuildFkMap(const ColumnPtr& child_key,
                              const ColumnPtr& parent_key) {
  const auto& cvals = child_key->Data<Oid>();
  const auto& pvals = parent_key->Data<Oid>();
  std::unordered_map<Oid, Oid> ppos;
  ppos.reserve(pvals.size());
  for (size_t j = 0; j < pvals.size(); ++j) ppos.emplace(pvals[j], j);
  std::vector<Oid> map(cvals.size());
  for (size_t i = 0; i < cvals.size(); ++i) {
    auto it = ppos.find(cvals[i]);
    map[i] = it == ppos.end() ? kNilOid : it->second;
  }
  auto col = Column::Make(TypeTag::kOid, std::move(map));
  col->set_persistent(true);
  return col;
}

Status Catalog::RebuildIndex(FkIndex* idx) {
  const Table* c = tables_[idx->child_table].get();
  const Table* p = tables_[idx->parent_table].get();
  const ColumnPtr& ckey = c->column(idx->child_key);
  const ColumnPtr& pkey = p->column(idx->parent_key);
  if (ckey == nullptr || pkey == nullptr)
    return Status::Internal("fk index over unloaded columns");
  if (ckey->type() != TypeTag::kOid || pkey->type() != TypeTag::kOid)
    return Status::InvalidArgument("fk keys must be oid-typed");
  idx->map = BuildFkMap(ckey, pkey);
  return Status::OK();
}

Status Catalog::DropTable(const std::string& name) {
  auto it = table_by_name_.find(name);
  if (it == table_by_name_.end()) return Status::NotFound("table " + name);
  int32_t id = it->second;
  std::vector<ColumnId> invalidated;
  Table* t = tables_[id].get();
  for (size_t ci = 0; ci < t->num_columns(); ++ci)
    invalidated.push_back({id, static_cast<int32_t>(ci)});
  for (size_t k = 0; k < indices_.size(); ++k) {
    if (indices_[k].child_table == id || indices_[k].parent_table == id) {
      invalidated.push_back({indices_[k].child_table,
                             kIndexColBase + static_cast<int32_t>(k)});
      index_by_name_.erase(indices_[k].name);
    }
  }
  indices_.erase(std::remove_if(indices_.begin(), indices_.end(),
                                [&](const FkIndex& x) {
                                  return x.child_table == id ||
                                         x.parent_table == id;
                                }),
                 indices_.end());
  // Rebuild name->slot map since slots shifted — and drop the whole
  // slot-keyed index bind cache: surviving indices now live under new slots,
  // so per-slot erasure would leave stale entries that a later index
  // reusing the slot would wrongly inherit.
  index_by_name_.clear();
  for (size_t k = 0; k < indices_.size(); ++k)
    index_by_name_[indices_[k].name] = static_cast<int>(k);
  {
    std::lock_guard<std::mutex> lock(bind_mu_);
    index_bind_cache_.clear();
  }
  InvalidateBindCache(id);
  tables_[id].reset();
  table_by_name_.erase(it);
  commit_history_.erase(id);
  history_floor_.erase(id);
  // Listener first (pool/plan maintenance, stale-epoch stamping), THEN the
  // new epoch becomes visible — same ordering contract as Commit.
  if (listener_) listener_(invalidated, UpdateKind::kSchema);
  PublishSnapshot();
  return Status::OK();
}

const Table* Catalog::FindTable(const std::string& name) const {
  auto it = table_by_name_.find(name);
  if (it == table_by_name_.end()) return nullptr;
  return tables_[it->second].get();
}

Result<ColumnId> Catalog::GetColumnId(const std::string& table,
                                      const std::string& column) const {
  const Table* t = FindTable(table);
  if (t == nullptr) return Status::NotFound("table " + table);
  int ci = t->FindColumn(column);
  if (ci < 0) return Status::NotFound("column " + table + "." + column);
  return ColumnId{t->id(), ci};
}

Result<ColumnId> Catalog::GetIndexId(const std::string& index) const {
  auto it = index_by_name_.find(index);
  if (it == index_by_name_.end()) return Status::NotFound("index " + index);
  return ColumnId{indices_[it->second].child_table,
                  kIndexColBase + it->second};
}

Result<std::string> Catalog::FindFkIndex(const std::string& child_table,
                                         const std::string& child_col,
                                         const std::string& parent_table,
                                         const std::string& parent_col) const {
  const Table* c = FindTable(child_table);
  const Table* p = FindTable(parent_table);
  if (c == nullptr || p == nullptr)
    return Status::NotFound("fk index tables");
  int cc = c->FindColumn(child_col);
  int pc = p->FindColumn(parent_col);
  if (cc < 0 || pc < 0) return Status::NotFound("fk index key columns");
  for (const FkIndex& idx : indices_) {
    if (idx.child_table == c->id() && idx.parent_table == p->id() &&
        idx.child_key == cc && idx.parent_key == pc) {
      return idx.name;
    }
  }
  return Status::NotFound(StrFormat(
      "no foreign-key join index registered for %s.%s -> %s.%s",
      child_table.c_str(), child_col.c_str(), parent_table.c_str(),
      parent_col.c_str()));
}

Result<BatPtr> Catalog::BindColumn(const std::string& table,
                                   const std::string& column) {
  const Table* t = FindTable(table);
  if (t == nullptr) return Status::NotFound("table " + table);
  int ci = t->FindColumn(column);
  if (ci < 0) return Status::NotFound("column " + table + "." + column);
  if (t->column(ci) == nullptr)
    return Status::Internal("column not loaded: " + table + "." + column);
  auto key = std::make_pair(t->id(), ci);
  std::lock_guard<std::mutex> lock(bind_mu_);
  auto it = bind_cache_.find(key);
  if (it != bind_cache_.end()) return it->second;
  BatPtr b = Bat::DenseHead(t->column(ci));
  bind_cache_[key] = b;
  return b;
}

Result<BatPtr> Catalog::BindIndex(const std::string& index) {
  auto it = index_by_name_.find(index);
  if (it == index_by_name_.end()) return Status::NotFound("index " + index);
  std::lock_guard<std::mutex> lock(bind_mu_);
  auto cached = index_bind_cache_.find(it->second);
  if (cached != index_bind_cache_.end()) return cached->second;
  BatPtr b = Bat::DenseHead(indices_[it->second].map);
  index_bind_cache_[it->second] = b;
  return b;
}

TxnWriteSet Catalog::BeginWrite() const {
  TxnWriteSet ws;
  ws.begin_epoch = epoch();
  return ws;
}

Status Catalog::Append(TxnWriteSet* ws, const std::string& table,
                       std::vector<std::vector<Scalar>> rows) {
  const Table* t = FindTable(table);
  if (t == nullptr) return Status::NotFound("table " + table);
  for (const auto& r : rows) {
    if (r.size() != t->num_columns())
      return Status::InvalidArgument("row arity mismatch");
  }
  auto& delta = ws->deltas[t->id()];
  for (auto& r : rows) delta.inserts.push_back(std::move(r));
  ++ws->version;
  return Status::OK();
}

Status Catalog::Delete(TxnWriteSet* ws, const std::string& table,
                       std::vector<Oid> overlay_oids,
                       const CatalogSnapshot* base_snap, size_t* newly_queued) {
  const Table* t = FindTable(table);
  if (t == nullptr) return Status::NotFound("table " + table);
  // The kept-row boundary is the BEGIN snapshot's row count: the victim
  // scan that produced these oids ran against that snapshot (plus this
  // write set), so commits landed since must not move the boundary.
  size_t base = t->num_rows();
  if (base_snap != nullptr) {
    if (t->num_columns() == 0)
      return Status::Internal("delete from a column-less table");
    RDB_ASSIGN_OR_RETURN(BatPtr b,
                         base_snap->BindColumn(table, t->column_name(0)));
    base = b->size();
  }
  auto& delta = ws->deltas[t->id()];
  const size_t kept = base - delta.deletes.size();

  // Sorted copy of the already-queued begin-coordinate deletes: the inverse
  // of the overlay's compaction walks it ascending to restore each kept
  // overlay oid to its begin coordinate.
  std::vector<Oid> queued_sorted(delta.deletes.begin(), delta.deletes.end());
  std::sort(queued_sorted.begin(), queued_sorted.end());

  std::vector<Oid> base_victims;
  std::vector<size_t> insert_victims;  // indices into delta.inserts
  for (Oid v : overlay_oids) {
    if (v < kept) {
      Oid b = v;
      for (Oid d : queued_sorted) {
        if (d <= b)
          ++b;
        else
          break;
      }
      base_victims.push_back(b);
    } else {
      size_t idx = v - kept;
      if (idx >= delta.inserts.size())
        return Status::Internal("victim oid beyond the overlay row space");
      insert_victims.push_back(idx);
    }
  }

  size_t added = 0;
  // Un-queue the transaction's own pending inserts, highest index first so
  // earlier removals do not shift later ones.
  std::sort(insert_victims.begin(), insert_victims.end());
  insert_victims.erase(
      std::unique(insert_victims.begin(), insert_victims.end()),
      insert_victims.end());
  for (auto it = insert_victims.rbegin(); it != insert_victims.rend(); ++it) {
    delta.inserts.erase(delta.inserts.begin() +
                        static_cast<ptrdiff_t>(*it));
    ++added;
  }
  std::unordered_set<Oid> dedup(delta.deletes.begin(), delta.deletes.end());
  for (Oid b : base_victims) {
    if (dedup.insert(b).second) {
      delta.deletes.push_back(b);
      ++added;
    }
  }
  if (newly_queued != nullptr) *newly_queued = added;
  if (added > 0) ++ws->version;
  return Status::OK();
}

void Catalog::InvalidateBindCache(int32_t table_id) {
  std::lock_guard<std::mutex> lock(bind_mu_);
  for (auto it = bind_cache_.begin(); it != bind_cache_.end();) {
    if (it->first.first == table_id)
      it = bind_cache_.erase(it);
    else
      ++it;
  }
}

Status Catalog::CommitWrite(TxnWriteSet* ws) {
  if (ws->Empty()) {
    ws->deltas.clear();
    return Status::OK();
  }

  // --- Phase 1: first-writer-wins conflict check + coordinate remap. Pure
  // over the catalog — a WriteConflict return leaves every table, cache,
  // and epoch untouched; the caller discards the write set (abort).
  //
  // ws delete oids are in begin-snapshot coordinates. Every delete-carrying
  // commit published since renumbered the table's rows (its compaction
  // shifts subsequent oids down); replaying the retained commit records in
  // epoch order either proves a conflict (some commit deleted the same row
  // this transaction targets) or yields the rows' CURRENT coordinates.
  // Insert-only commits neither move nor remove rows, so they are absent
  // from the history and two insert-only transactions never conflict.
  std::map<int32_t, std::vector<Oid>> remapped;
  for (auto& [tid, delta] : ws->deltas) {
    if (delta.Empty()) continue;
    if (tid < 0 || static_cast<size_t>(tid) >= tables_.size() ||
        tables_[tid] == nullptr)
      return Status::NotFound("table dropped since the transaction began");
    if (delta.deletes.empty()) continue;
    const std::string& tname = tables_[tid]->name();
    auto fit = history_floor_.find(tid);
    if (fit != history_floor_.end() && ws->begin_epoch < fit->second)
      return Status::WriteConflict(
          "transaction over '" + tname +
          "' began before the retained commit history (epoch " +
          std::to_string(ws->begin_epoch) + " < floor " +
          std::to_string(fit->second) + ")");
    std::vector<Oid> oids = delta.deletes;
    auto hit = commit_history_.find(tid);
    if (hit != commit_history_.end()) {
      for (const CommitRecord& rec : hit->second) {  // ascending epoch
        if (rec.epoch <= ws->begin_epoch) continue;
        for (Oid& o : oids) {
          auto lb = std::lower_bound(rec.deleted_sorted.begin(),
                                     rec.deleted_sorted.end(), o);
          if (lb != rec.deleted_sorted.end() && *lb == o)
            return Status::WriteConflict(
                "row of '" + tname +
                "' was deleted or updated by a transaction that committed at "
                "epoch " +
                std::to_string(rec.epoch));
          o -= static_cast<Oid>(lb - rec.deleted_sorted.begin());
        }
      }
    }
    remapped[tid] = std::move(oids);
  }

  // --- Phase 2: the delta merge (the pre-transaction Commit body), reading
  // deletes in their remapped current coordinates.
  std::vector<ColumnId> invalidated;
  last_insert_delta_.clear();
  last_commit_insert_only_.clear();
  std::vector<int32_t> updated_tables;

  for (auto& [tid, delta] : ws->deltas) {
    if (delta.Empty()) continue;
    Table* t = tables_[tid].get();
    updated_tables.push_back(tid);
    last_commit_insert_only_[tid] = delta.deletes.empty();
    const std::vector<Oid>& cur_deletes =
        remapped.count(tid) ? remapped[tid] : delta.deletes;

    std::vector<bool> deleted(t->rows_, false);
    size_t del_count = 0;
    for (Oid o : cur_deletes) {
      if (o < t->rows_ && !deleted[o]) {
        deleted[o] = true;
        ++del_count;
      }
    }
    size_t kept = t->rows_ - del_count;

    for (size_t ci = 0; ci < t->num_columns(); ++ci) {
      TypeTag ctype = t->defs_[ci].type;
      const ColumnPtr& old = t->cols_[ci];
      RDB_CHECK(old != nullptr);
      VisitPhysical(ctype, [&](auto tag) {
        using T = typename decltype(tag)::type;
        const auto& src = old->Data<T>();
        std::vector<T> fresh;
        fresh.reserve(kept + delta.inserts.size());
        for (size_t i = 0; i < src.size(); ++i) {
          if (!deleted[i]) fresh.push_back(src[i]);
        }
        std::vector<T> ins;
        ins.reserve(delta.inserts.size());
        for (const auto& row : delta.inserts) {
          ins.push_back(row[ci].Get<T>());
        }
        // Record the insert delta for §6.3 propagation before merging.
        if (!ins.empty()) {
          auto dcol = Column::Make(ctype, ins);
          last_insert_delta_[{tid, static_cast<int>(ci)}] =
              Bat::Make(BatSide::Dense(kept), BatSide::Materialized(dcol),
                        ins.size());
        }
        fresh.insert(fresh.end(), ins.begin(), ins.end());
        auto col = Column::Make(ctype, std::move(fresh));
        col->set_persistent(true);
        col->ComputeSorted();
        t->cols_[ci] = std::move(col);
      });
      invalidated.push_back({tid, static_cast<int32_t>(ci)});
    }
    t->rows_ = kept + delta.inserts.size();
    InvalidateBindCache(tid);
  }

  // Rebuild join indices touching any updated table.
  for (size_t k = 0; k < indices_.size(); ++k) {
    FkIndex& idx = indices_[k];
    bool touched = false;
    for (int32_t tid : updated_tables) {
      if (idx.child_table == tid || idx.parent_table == tid) touched = true;
    }
    if (!touched) continue;
    RDB_RETURN_NOT_OK(RebuildIndex(&idx));
    {
      std::lock_guard<std::mutex> lock(bind_mu_);
      index_bind_cache_.erase(static_cast<int>(k));
    }
    invalidated.push_back({idx.child_table,
                           kIndexColBase + static_cast<int32_t>(k)});
  }

  // Record this commit's deletes (in the pre-commit coordinates computed by
  // phase 1) so later-committing transactions that began before it can be
  // remapped or refused. Insert-only tables are deliberately NOT recorded:
  // they never renumber rows, so they can neither cause nor lose a conflict.
  const uint64_t commit_epoch = epoch() + 1;  // PublishSnapshot's epoch
  for (auto& [tid, oids] : remapped) {
    if (oids.empty()) continue;
    std::sort(oids.begin(), oids.end());
    oids.erase(std::unique(oids.begin(), oids.end()), oids.end());
    auto& hist = commit_history_[tid];
    hist.push_back(CommitRecord{commit_epoch, std::move(oids)});
    while (hist.size() > kCommitHistoryCap) {
      // Pruned records raise the floor: transactions older than the newest
      // pruned epoch can no longer be remapped and conflict conservatively.
      history_floor_[tid] = std::max(history_floor_[tid], hist.front().epoch);
      hist.erase(hist.begin());
    }
  }

  ws->deltas.clear();
  if (invalidated.empty()) return Status::OK();  // all deltas were empty
  // Commit = merge deltas, let the listener reconcile the recycler pool and
  // plan cache against the columns that changed, and only THEN publish the
  // new snapshot and bump the epoch. Submissions that capture a snapshot
  // before the publish keep reading the previous version; submissions after
  // it see a fully reconciled pool — no reader ever observes a half-applied
  // commit.
  if (listener_) listener_(invalidated, UpdateKind::kData);
  PublishSnapshot();
  return Status::OK();
}

Result<CatalogSnapshotPtr> Catalog::OverlaySnapshot(
    const CatalogSnapshotPtr& base, const TxnWriteSet& ws) {
  auto snap = std::make_shared<CatalogSnapshot>();
  snap->epoch_ = base->epoch_;
  snap->cols_ = base->cols_;
  snap->indices_ = base->indices_;

  // Merged key columns per touched table, for FK-index rebuilds below.
  std::map<int32_t, std::map<int, ColumnPtr>> fresh_cols;

  for (const auto& [tid, delta] : ws.deltas) {
    if (delta.Empty()) continue;
    if (tid < 0 || static_cast<size_t>(tid) >= tables_.size() ||
        tables_[tid] == nullptr)
      return Status::NotFound("table dropped since the transaction began");
    const Table* t = tables_[tid].get();
    const std::string& tname = t->name();

    // Base row count and per-column source data come from the BEGIN
    // snapshot — the write set's delete oids are in its coordinates.
    RDB_ASSIGN_OR_RETURN(BatPtr probe,
                         base->BindColumn(tname, t->column_name(0)));
    const size_t base_rows = probe->size();
    std::vector<bool> deleted(base_rows, false);
    for (Oid o : delta.deletes) {
      if (o < base_rows) deleted[o] = true;
    }
    size_t kept = base_rows;
    for (Oid o : delta.deletes) {
      if (o < base_rows) --kept;
    }

    for (size_t ci = 0; ci < t->num_columns(); ++ci) {
      const std::string& cname = t->column_name(static_cast<int>(ci));
      RDB_ASSIGN_OR_RETURN(BatPtr bound, base->BindColumn(tname, cname));
      const ColumnPtr& old = bound->tail().col;
      if (old == nullptr)
        return Status::Internal("overlay over non-materialized base column");
      TypeTag ctype = t->defs_[ci].type;
      ColumnPtr merged;
      VisitPhysical(ctype, [&](auto tag) {
        using T = typename decltype(tag)::type;
        const auto& src = old->Data<T>();
        std::vector<T> fresh;
        fresh.reserve(kept + delta.inserts.size());
        for (size_t i = 0; i < src.size() && i < base_rows; ++i) {
          if (!deleted[i]) fresh.push_back(src[i]);
        }
        for (const auto& row : delta.inserts) {
          fresh.push_back(row[ci].Get<T>());
        }
        auto col = Column::Make(ctype, std::move(fresh));
        col->set_persistent(true);
        col->ComputeSorted();
        merged = std::move(col);
      });
      fresh_cols[tid][static_cast<int>(ci)] = merged;
      snap->cols_[{tname, cname}] = CatalogSnapshot::View{
          {tid, static_cast<int32_t>(ci)}, Bat::DenseHead(merged)};
    }
  }

  // Rebuild FK indices whose child or parent table the write set touched,
  // over the overlay's merged key columns.
  for (size_t k = 0; k < indices_.size(); ++k) {
    const FkIndex& idx = indices_[k];
    const bool touched = fresh_cols.count(idx.child_table) ||
                         fresh_cols.count(idx.parent_table);
    if (!touched) continue;
    auto key_col = [&](int32_t tid, int ci) -> Result<ColumnPtr> {
      auto fit = fresh_cols.find(tid);
      if (fit != fresh_cols.end()) {
        auto cit = fit->second.find(ci);
        if (cit != fit->second.end()) return cit->second;
      }
      const Table* t = tables_[tid].get();
      RDB_ASSIGN_OR_RETURN(
          BatPtr bound, base->BindColumn(t->name(), t->column_name(ci)));
      if (bound->tail().col == nullptr)
        return Status::Internal("overlay index over non-materialized column");
      return bound->tail().col;
    };
    RDB_ASSIGN_OR_RETURN(ColumnPtr ckey, key_col(idx.child_table, idx.child_key));
    RDB_ASSIGN_OR_RETURN(ColumnPtr pkey,
                         key_col(idx.parent_table, idx.parent_key));
    if (ckey->type() != TypeTag::kOid || pkey->type() != TypeTag::kOid)
      return Status::InvalidArgument("fk keys must be oid-typed");
    snap->indices_[idx.name] = CatalogSnapshot::View{
        {idx.child_table, kIndexColBase + static_cast<int32_t>(k)},
        Bat::DenseHead(BuildFkMap(ckey, pkey))};
  }
  return CatalogSnapshotPtr(std::move(snap));
}

Result<BatPtr> Catalog::LastInsertDelta(const std::string& table,
                                        const std::string& column) const {
  RDB_ASSIGN_OR_RETURN(ColumnId cid, GetColumnId(table, column));
  auto it = last_insert_delta_.find({cid.table, cid.col});
  if (it == last_insert_delta_.end())
    return Status::NotFound("no insert delta for " + table + "." + column);
  return it->second;
}

bool Catalog::LastCommitInsertOnly(const std::string& table) const {
  const Table* t = FindTable(table);
  if (t == nullptr) return false;
  auto it = last_commit_insert_only_.find(t->id());
  return it != last_commit_insert_only_.end() && it->second;
}

size_t Catalog::TotalPersistentBytes() const {
  size_t bytes = 0;
  for (const auto& t : tables_) {
    if (!t) continue;
    for (size_t ci = 0; ci < t->num_columns(); ++ci) {
      if (t->column(ci)) bytes += t->column(ci)->MemoryBytes();
    }
  }
  for (const auto& idx : indices_) {
    if (idx.map) bytes += idx.map->MemoryBytes();
  }
  return bytes;
}

size_t Catalog::BuildEncodings() {
  size_t encoded = 0;
  auto try_attach = [&encoded](const ColumnPtr& col) {
    if (!col || col->encoding() != nullptr || col->encoded_native()) return;
    EncodingPtr enc;
    switch (col->type()) {
      case TypeTag::kInt:
      case TypeTag::kDate:
        enc = ColumnEncoding::TryFor<int32_t>(col->Data<int32_t>());
        break;
      case TypeTag::kLng:
        enc = ColumnEncoding::TryFor<int64_t>(col->Data<int64_t>());
        break;
      case TypeTag::kOid:
        enc = ColumnEncoding::TryFor<Oid>(col->Data<Oid>());
        break;
      case TypeTag::kStr:
        enc = ColumnEncoding::TryDict(col->Data<std::string>());
        break;
      default:
        break;
    }
    if (enc) {
      // Columns are logically immutable snapshots; attaching a sidecar is
      // metadata-only (the raw data is untouched), so the const_cast is an
      // init-time exception, serialised like DDL.
      const_cast<Column*>(col.get())->AttachEncoding(std::move(enc));
      ++encoded;
    }
  };
  for (const auto& t : tables_) {
    if (!t) continue;
    for (size_t ci = 0; ci < t->num_columns(); ++ci) try_attach(t->column(ci));
  }
  for (const auto& idx : indices_) try_attach(idx.map);
  return encoded;
}

}  // namespace recycledb
