#ifndef RECYCLEDB_NET_SERVER_H_
#define RECYCLEDB_NET_SERVER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "net/protocol.h"
#include "server/query_service.h"

namespace recycledb::net {

/// Network front-end configuration.
struct NetConfig {
  std::string host = "127.0.0.1";
  /// TCP port; 0 binds an ephemeral port (read it back via port()).
  uint16_t port = 0;
  int max_connections = 64;
  /// Per-connection admission window: how many requests may be submitted
  /// into the QueryService at once. Advertised in WELCOME.
  uint32_t max_inflight_per_conn = 8;
  /// Requests parked per connection beyond the window before BUSY.
  uint32_t max_pending_per_conn = 32;
  size_t max_frame_bytes = kDefaultMaxFrameBytes;
  /// Admission control under governor pressure: while any budget domain's
  /// pressure epoch advanced within the last `pressure_window_ms`, the
  /// submit window shrinks to `pressure_inflight` and pending parking is
  /// disabled — overload turns into prompt BUSY responses instead of a
  /// growing queue.
  uint32_t pressure_inflight = 1;
  double pressure_window_ms = 250;
  /// Test seam: overrides the governor pressure-epoch source.
  std::function<uint64_t()> pressure_epoch_fn;
};

/// The wire front end of a QueryService: one listener plus one poll-driven
/// I/O loop multiplexes every connection onto the service's worker pool —
/// no thread per connection.
///
/// ## Threading model
///
///  - The I/O thread owns every socket and all per-connection state:
///    non-blocking accept/read/write, frame decode, admission control, and
///    response encoding all happen there.
///  - SELECT-path requests go through QueryService::SubmitAsync as Requests
///    under the connection's Session (MVCC snapshot reads by default); the
///    completion callback (on a service worker) posts into a completion
///    queue and wakes the I/O loop through a self-pipe.
///  - DML requests run on ONE dedicated executor thread (they block on the
///    exclusive update lock, which must never stall the I/O loop); the
///    session's autocommit is applied by QueryService::Submit itself,
///    atomically with the statement.
///  - Stop() closes the listener, fails requests still parked in pending
///    queues, then drains: every submitted request's completion is awaited,
///    encoded, and flushed before the I/O thread exits. The wait is purely
///    event-driven (completions wake the loop); no sleeps.
///
/// The server registers its metrics (connection gauge/counters, decode /
/// queue / request latency histograms, queries_cancelled) into the
/// service's MetricsRegistry, so `.metrics` and the Prometheus export cover
/// the network layer. The QueryService must outlive the server.
class RecycleServer {
 public:
  explicit RecycleServer(QueryService* svc, NetConfig cfg = {});
  ~RecycleServer();

  RecycleServer(const RecycleServer&) = delete;
  RecycleServer& operator=(const RecycleServer&) = delete;

  /// Binds, listens, and starts the I/O + DML threads. Fails cleanly on
  /// bind errors (port in use, bad host).
  Status Start();

  /// Graceful shutdown: stops accepting, fails parked requests, drains
  /// in-flight ones (responses are flushed), joins both threads.
  /// Deterministic and idempotent.
  void Stop();

  /// The bound TCP port (after a successful Start).
  uint16_t port() const { return port_; }
  bool running() const { return running_.load(std::memory_order_acquire); }

  /// Live connection count (also exported as net_connections_active).
  size_t connection_count() const {
    return conn_gauge_value_.load(std::memory_order_relaxed);
  }

 private:
  struct ReqState {
    bool cancelled = false;
    double recv_ms = 0;
  };
  struct PendingReq {
    uint64_t rid = 0;
    bool is_dml = false;
    std::string sql;
    double recv_ms = 0;
  };
  struct Conn {
    uint64_t id = 0;
    int fd = -1;
    FrameDecoder decoder;
    std::string wbuf;  ///< encoded-but-unsent bytes
    size_t woff = 0;   ///< sent prefix of wbuf
    bool hello_done = false;
    /// The QueryService session every request on this connection executes
    /// under: owns autocommit (SET_OPTION), trace-all, and snapshot pinning.
    /// Shared so an in-flight DML job keeps it alive past CloseConn.
    std::shared_ptr<Session> session = std::make_shared<Session>();
    bool stop_reading = false;
    bool close_after_flush = false;
    /// Closed but not yet reaped: the fd is gone and the conn left conns_,
    /// but the object stays alive in graveyard_ so callers up the stack
    /// (SendFrame → FlushConn → CloseConn) still hold a valid pointer.
    /// Every write/submit path no-ops on a dead conn.
    bool dead = false;
    uint32_t inflight = 0;              ///< submitted, response not yet sent
    std::deque<PendingReq> pending;     ///< admitted, awaiting a window slot
    std::unordered_map<uint64_t, ReqState> submitted;

    explicit Conn(size_t max_frame) : decoder(max_frame) {}
  };
  struct Completion {
    uint64_t conn_id = 0;
    uint64_t rid = 0;
    Result<QueryResult> result;
  };
  struct DmlJob {
    uint64_t conn_id = 0;
    uint64_t rid = 0;
    std::string sql;
    /// Keeps the connection's session (and its autocommit flag) alive even
    /// if the connection closes while the job waits for the update lock.
    std::shared_ptr<Session> session;
  };

  void IoLoop();
  void DmlLoop();

  void AcceptNew();
  void ReadConn(Conn* conn);
  void HandleFrame(Conn* conn, Frame frame);
  void HandleRequest(Conn* conn, uint64_t rid, bool is_dml, std::string sql);
  void HandleCancel(Conn* conn, const Frame& frame);
  void SubmitWhileOpen(Conn* conn);
  void Submit(Conn* conn, PendingReq req);
  void ProcessCompletions();
  void CompleteOne(Completion c);
  void SendFrame(Conn* conn, FrameKind kind, uint64_t rid,
                 std::string payload, uint8_t flags = 0);
  void SendError(Conn* conn, uint64_t rid, const Status& st);
  void FlushConn(Conn* conn);
  void CloseConn(uint64_t conn_id);
  void BeginDrain();
  bool DrainComplete() const;
  void SetConnGauge(size_t n);

  /// Posts a finished request's result and wakes the I/O loop. Safe from
  /// any thread; the wake write happens under the completion mutex so the
  /// I/O loop cannot observe the completion before the poster is done
  /// touching server state (shutdown safety).
  void PostCompletion(uint64_t conn_id, uint64_t rid, Result<QueryResult> r);
  void WakeLocked();

  /// True while the governor reported pressure within the last
  /// pressure_window_ms (see NetConfig). I/O-thread only.
  bool PressureActive();
  uint32_t EffectiveWindow();
  size_t EffectivePendingCap();

  QueryService* svc_;
  NetConfig cfg_;
  uint16_t port_ = 0;
  int listen_fd_ = -1;
  int wake_rd_ = -1;
  int wake_wr_ = -1;

  std::atomic<bool> started_{false};
  std::atomic<bool> running_{false};
  std::atomic<bool> stop_requested_{false};
  bool stopped_ = false;  ///< Stop() ran to completion (caller thread)

  // I/O-thread-owned state.
  std::unordered_map<uint64_t, std::unique_ptr<Conn>> conns_;
  /// Conns closed mid-iteration; destruction is deferred to the top of the
  /// next IoLoop round so no stack frame can dangle (see Conn::dead).
  std::vector<std::unique_ptr<Conn>> graveyard_;
  uint64_t next_conn_id_ = 1;
  bool draining_ = false;
  uint64_t last_pressure_epoch_ = 0;
  double pressure_until_ms_ = 0;

  /// Submitted-but-unanswered requests across all connections (including
  /// ones whose connection died); drain waits for it to reach zero.
  std::atomic<size_t> total_inflight_{0};

  std::mutex comp_mu_;
  std::deque<Completion> completions_;

  std::mutex dml_mu_;
  std::condition_variable dml_cv_;
  std::deque<DmlJob> dml_queue_;
  bool dml_stop_ = false;

  std::atomic<size_t> conn_gauge_value_{0};

  // Registry-owned metrics (registered into the service's registry).
  obs::Gauge* g_connections_ = nullptr;
  obs::Counter* c_conn_opened_ = nullptr;
  obs::Counter* c_conn_closed_ = nullptr;
  obs::Counter* c_requests_ = nullptr;
  obs::Counter* c_busy_ = nullptr;
  obs::Counter* c_proto_errors_ = nullptr;
  obs::Counter* c_cancelled_ = nullptr;
  obs::Counter* c_bytes_read_ = nullptr;
  obs::Counter* c_bytes_written_ = nullptr;
  obs::LatencyHistogram* h_decode_us_ = nullptr;
  obs::LatencyHistogram* h_queue_us_ = nullptr;
  obs::LatencyHistogram* h_request_us_ = nullptr;

  std::thread io_thread_;
  std::thread dml_thread_;
};

}  // namespace recycledb::net

#endif  // RECYCLEDB_NET_SERVER_H_
