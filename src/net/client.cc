#include "net/client.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>

#include "util/str.h"

namespace recycledb::net {

namespace {

constexpr const char kBusyPrefix[] = "BUSY: ";

timeval MsToTimeval(double ms) {
  timeval tv{};
  if (ms > 0) {
    tv.tv_sec = static_cast<time_t>(ms / 1000);
    tv.tv_usec = static_cast<suseconds_t>(
        (ms - static_cast<double>(tv.tv_sec) * 1000) * 1000);
  }
  return tv;
}

/// One non-blocking connect attempt bounded by `timeout_ms`. Returns the
/// connected fd, -1 on refusal (worth retrying), or -2 on hard failure.
int TryConnect(const sockaddr_in& addr, double timeout_ms,
               std::string* error) {
  int fd = socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) {
    *error = StrFormat("socket: %s", std::strerror(errno));
    return -2;
  }
  int flags = fcntl(fd, F_GETFL, 0);
  fcntl(fd, F_SETFL, flags | O_NONBLOCK);
  int rc = connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                   sizeof(addr));
  if (rc != 0 && errno == EINPROGRESS) {
    pollfd pfd{fd, POLLOUT, 0};
    rc = poll(&pfd, 1, static_cast<int>(timeout_ms));
    if (rc <= 0) {
      *error = rc == 0 ? "connect timed out"
                       : StrFormat("poll: %s", std::strerror(errno));
      close(fd);
      return -2;
    }
    int err = 0;
    socklen_t len = sizeof(err);
    getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len);
    rc = err == 0 ? 0 : -1;
    errno = err;
  }
  if (rc != 0) {
    *error = StrFormat("connect: %s", std::strerror(errno));
    close(fd);
    return errno == ECONNREFUSED ? -1 : -2;
  }
  fcntl(fd, F_SETFL, flags);  // back to blocking
  return fd;
}

/// Maps a non-RESULT response frame to a Status; RESULT returns OK and
/// leaves decoding to the caller.
Status FrameToStatus(const Frame& f) {
  switch (f.kind) {
    case FrameKind::kResult:
    case FrameKind::kOk:
    case FrameKind::kPong:
    case FrameKind::kMetricsResult:
      return Status::OK();
    case FrameKind::kBusy: {
      Cursor c{&f.payload};
      std::string reason;
      if (!GetString(&c, &reason).ok()) reason = "server busy";
      return Status::OutOfRange(std::string(kBusyPrefix) + reason);
    }
    case FrameKind::kCancelled:
      return Status::Internal("request was cancelled");
    case FrameKind::kError: {
      auto err = DecodeError(f.payload);
      if (!err.ok()) return err.status();
      return MakeStatus(err.value().code, err.value().message);
    }
    default:
      return Status::Internal(StrFormat("unexpected %s response frame",
                                        FrameKindName(f.kind)));
  }
}

}  // namespace

Client::~Client() { Close(); }

void Client::Close() {
  if (fd_ >= 0) {
    close(fd_);
    fd_ = -1;
  }
  decoder_ = FrameDecoder(kDefaultMaxFrameBytes);
  version_ = 0;
  server_max_inflight_ = 0;
  server_snapshot_reads_ = false;
}

bool Client::IsBusy(const Status& st) {
  return !st.ok() &&
         st.message().compare(0, sizeof(kBusyPrefix) - 1, kBusyPrefix) == 0;
}

Status Client::Connect(const ClientConfig& cfg) {
  Close();
  cfg_ = cfg;

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(cfg.port);
  if (inet_pton(AF_INET, cfg.host.c_str(), &addr.sin_addr) != 1)
    return Status::InvalidArgument("bad host '" + cfg.host + "'");

  std::string error;
  int fd = -1;
  for (int attempt = 0;; ++attempt) {
    fd = TryConnect(addr, cfg.connect_timeout_ms, &error);
    if (fd >= 0) break;
    // ECONNREFUSED usually means the server is not up *yet* — retry.
    if (fd == -1 && attempt < cfg.connect_retries) {
      std::this_thread::sleep_for(
          std::chrono::duration<double, std::milli>(cfg.retry_delay_ms));
      continue;
    }
    return Status::Internal(StrFormat("%s:%u: %s", cfg.host.c_str(),
                                      cfg.port, error.c_str()));
  }

  int one = 1;
  setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  timeval tv = MsToTimeval(cfg.io_timeout_ms);
  setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
  fd_ = fd;

  const uint64_t rid = next_rid_++;
  HelloPayload hello;
  Status st = SendRequest(FrameKind::kHello, rid, EncodeHello(hello));
  Frame f;
  if (st.ok()) st = ReadResponse(rid, &f);
  if (!st.ok()) {
    Close();
    return st;
  }
  if (f.kind == FrameKind::kBusy) {
    // Over the connection cap: the server answers BUSY before any
    // handshake. Surface it as a retryable IsBusy() status, not a
    // generic connection failure.
    Status busy = FrameToStatus(f);
    Close();
    return busy;
  }
  if (f.kind == FrameKind::kError) {
    auto err = DecodeError(f.payload);
    Close();
    return Status::Internal(
        "handshake rejected: " +
        (err.ok() ? err.value().message : err.status().message()));
  }
  if (f.kind != FrameKind::kWelcome) {
    Close();
    return Status::Internal(StrFormat("handshake: unexpected %s frame",
                                      FrameKindName(f.kind)));
  }
  auto welcome = DecodeWelcome(f.payload);
  if (!welcome.ok()) {
    Close();
    return welcome.status();
  }
  version_ = welcome.value().version;
  server_max_inflight_ = welcome.value().max_inflight;
  server_snapshot_reads_ = (f.flags & kWelcomeFlagSnapshotReads) != 0;
  return Status::OK();
}

Status Client::SendRequest(FrameKind kind, uint64_t rid,
                           const std::string& payload) {
  if (fd_ < 0) return Status::Internal("client is not connected");
  Frame f;
  f.kind = kind;
  f.request_id = rid;
  f.payload = payload;
  std::string bytes = EncodeFrame(f);
  size_t off = 0;
  while (off < bytes.size()) {
    ssize_t n = send(fd_, bytes.data() + off, bytes.size() - off,
                     MSG_NOSIGNAL);
    if (n > 0) {
      off += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    Status st = Status::Internal(
        errno == EAGAIN || errno == EWOULDBLOCK
            ? "send timed out"
            : StrFormat("send: %s", std::strerror(errno)));
    Close();
    return st;
  }
  return Status::OK();
}

Status Client::FillDecoder() {
  char buf[64 * 1024];
  while (true) {
    ssize_t n = recv(fd_, buf, sizeof(buf), 0);
    if (n > 0) {
      decoder_.Feed(buf, static_cast<size_t>(n));
      return Status::OK();
    }
    if (n == 0) {
      Close();
      return Status::Internal("server closed the connection");
    }
    if (errno == EINTR) continue;
    Status st = Status::Internal(
        errno == EAGAIN || errno == EWOULDBLOCK
            ? "receive timed out"
            : StrFormat("recv: %s", std::strerror(errno)));
    Close();
    return st;
  }
}

Status Client::ReadResponse(uint64_t rid, Frame* out) {
  while (true) {
    Frame f;
    FrameDecoder::Outcome o = decoder_.Next(&f);
    if (o == FrameDecoder::Outcome::kError) {
      Status st =
          Status::Internal("protocol error from server: " + decoder_.error());
      Close();
      return st;
    }
    if (o == FrameDecoder::Outcome::kNeedMore) {
      RDB_RETURN_NOT_OK(FillDecoder());
      continue;
    }
    // Accept the answer to this request, plus connection-level frames the
    // server sends with request_id 0: protocol ERRORs and the pre-handshake
    // BUSY when the connection cap rejects us. An ERROR carrying some
    // *other* request's id (e.g. a late failure racing a CANCEL) is
    // dropped like any other stale response — it must not be
    // misattributed to this call.
    const bool conn_level = f.request_id == 0 &&
                            (f.kind == FrameKind::kError ||
                             f.kind == FrameKind::kBusy);
    if (f.request_id == rid || conn_level) {
      *out = std::move(f);
      return Status::OK();
    }
    // A response to some other id (e.g. a late CANCELLED): drop it.
  }
}

Result<Client::Response> Client::Query(const std::string& sql) {
  const uint64_t rid = next_rid_++;
  std::string payload;
  PutString(&payload, sql);
  RDB_RETURN_NOT_OK(SendRequest(FrameKind::kQuery, rid, payload));
  Frame f;
  RDB_RETURN_NOT_OK(ReadResponse(rid, &f));
  RDB_RETURN_NOT_OK(FrameToStatus(f));
  if (f.kind != FrameKind::kResult)
    return Status::Internal(StrFormat("expected RESULT, got %s",
                                      FrameKindName(f.kind)));
  Cursor c{&f.payload};
  std::string rs_bytes;
  RDB_RETURN_NOT_OK(GetString(&c, &rs_bytes));
  Response resp;
  RDB_ASSIGN_OR_RETURN(resp.result, DecodeResultSet(rs_bytes));
  if (f.flags & kFlagHasTrace) RDB_RETURN_NOT_OK(GetString(&c, &resp.trace));
  return resp;
}

Result<QueryResult> Client::Execute(const std::string& sql) {
  const uint64_t rid = next_rid_++;
  std::string payload;
  PutString(&payload, sql);
  RDB_RETURN_NOT_OK(SendRequest(FrameKind::kDml, rid, payload));
  Frame f;
  RDB_RETURN_NOT_OK(ReadResponse(rid, &f));
  RDB_RETURN_NOT_OK(FrameToStatus(f));
  if (f.kind != FrameKind::kResult)
    return Status::Internal(StrFormat("expected RESULT, got %s",
                                      FrameKindName(f.kind)));
  Cursor c{&f.payload};
  std::string rs_bytes;
  RDB_RETURN_NOT_OK(GetString(&c, &rs_bytes));
  return DecodeResultSet(rs_bytes);
}

Status Client::Ping() {
  const uint64_t rid = next_rid_++;
  RDB_RETURN_NOT_OK(SendRequest(FrameKind::kPing, rid, ""));
  Frame f;
  RDB_RETURN_NOT_OK(ReadResponse(rid, &f));
  RDB_RETURN_NOT_OK(FrameToStatus(f));
  return f.kind == FrameKind::kPong
             ? Status::OK()
             : Status::Internal(StrFormat("expected PONG, got %s",
                                          FrameKindName(f.kind)));
}

Result<std::string> Client::Metrics(bool prometheus) {
  const uint64_t rid = next_rid_++;
  std::string payload;
  PutU8(&payload, prometheus ? 1 : 0);
  RDB_RETURN_NOT_OK(SendRequest(FrameKind::kMetrics, rid, payload));
  Frame f;
  RDB_RETURN_NOT_OK(ReadResponse(rid, &f));
  RDB_RETURN_NOT_OK(FrameToStatus(f));
  if (f.kind != FrameKind::kMetricsResult)
    return Status::Internal(StrFormat("expected METRICS_RESULT, got %s",
                                      FrameKindName(f.kind)));
  Cursor c{&f.payload};
  std::string text;
  RDB_RETURN_NOT_OK(GetString(&c, &text));
  return text;
}

Status Client::SetOption(const std::string& name, bool on) {
  const uint64_t rid = next_rid_++;
  std::string payload;
  PutString(&payload, name);
  PutString(&payload, on ? "on" : "off");
  RDB_RETURN_NOT_OK(SendRequest(FrameKind::kSetOption, rid, payload));
  Frame f;
  RDB_RETURN_NOT_OK(ReadResponse(rid, &f));
  RDB_RETURN_NOT_OK(FrameToStatus(f));
  return f.kind == FrameKind::kOk
             ? Status::OK()
             : Status::Internal(StrFormat("expected OK, got %s",
                                          FrameKindName(f.kind)));
}

Status Client::Cancel(uint64_t target_request_id) {
  const uint64_t rid = next_rid_++;
  std::string payload;
  PutU64(&payload, target_request_id);
  RDB_RETURN_NOT_OK(SendRequest(FrameKind::kCancel, rid, payload));
  Frame f;
  RDB_RETURN_NOT_OK(ReadResponse(rid, &f));
  return FrameToStatus(f);
}

}  // namespace recycledb::net
