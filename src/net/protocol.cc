#include "net/protocol.h"

#include <cctype>
#include <cstring>
#include <utility>

#include "util/str.h"

namespace recycledb::net {

Status MakeStatus(StatusCode code, std::string msg) {
  switch (code) {
    case StatusCode::kInvalidArgument:
      return Status::InvalidArgument(std::move(msg));
    case StatusCode::kNotFound:
      return Status::NotFound(std::move(msg));
    case StatusCode::kTypeMismatch:
      return Status::TypeMismatch(std::move(msg));
    case StatusCode::kOutOfRange:
      return Status::OutOfRange(std::move(msg));
    case StatusCode::kNotImplemented:
      return Status::NotImplemented(std::move(msg));
    case StatusCode::kDeadlineExceeded:
      return Status::DeadlineExceeded(std::move(msg));
    case StatusCode::kWriteConflict:
      return Status::WriteConflict(std::move(msg));
    case StatusCode::kInternal:
    case StatusCode::kOk:
      break;
  }
  return Status::Internal(std::move(msg));
}

namespace {

Status Truncated(const char* what) {
  return Status::InvalidArgument(StrFormat("truncated payload: %s", what));
}

}  // namespace

const char* FrameKindName(FrameKind k) {
  switch (k) {
    case FrameKind::kHello:
      return "HELLO";
    case FrameKind::kQuery:
      return "QUERY";
    case FrameKind::kDml:
      return "DML";
    case FrameKind::kCancel:
      return "CANCEL";
    case FrameKind::kPing:
      return "PING";
    case FrameKind::kMetrics:
      return "METRICS";
    case FrameKind::kSetOption:
      return "SET_OPTION";
    case FrameKind::kWelcome:
      return "WELCOME";
    case FrameKind::kResult:
      return "RESULT";
    case FrameKind::kError:
      return "ERROR";
    case FrameKind::kPong:
      return "PONG";
    case FrameKind::kMetricsResult:
      return "METRICS_RESULT";
    case FrameKind::kBusy:
      return "BUSY";
    case FrameKind::kCancelled:
      return "CANCELLED";
    case FrameKind::kOk:
      return "OK";
  }
  return "?";
}

bool IsKnownFrameKind(uint8_t k) {
  return (k >= static_cast<uint8_t>(FrameKind::kHello) &&
          k <= static_cast<uint8_t>(FrameKind::kSetOption)) ||
         (k >= static_cast<uint8_t>(FrameKind::kWelcome) &&
          k <= static_cast<uint8_t>(FrameKind::kOk));
}

void PutU8(std::string* out, uint8_t v) {
  out->push_back(static_cast<char>(v));
}

void PutU32(std::string* out, uint32_t v) {
  for (int i = 0; i < 4; ++i)
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

void PutU64(std::string* out, uint64_t v) {
  for (int i = 0; i < 8; ++i)
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

void PutString(std::string* out, const std::string& s) {
  PutU32(out, static_cast<uint32_t>(s.size()));
  out->append(s);
}

Status GetU8(Cursor* c, uint8_t* v) {
  if (c->Remaining() < 1) return Truncated("u8");
  *v = static_cast<uint8_t>((*c->data)[c->pos++]);
  return Status::OK();
}

Status GetU32(Cursor* c, uint32_t* v) {
  if (c->Remaining() < 4) return Truncated("u32");
  uint32_t out = 0;
  for (int i = 0; i < 4; ++i) {
    out |= static_cast<uint32_t>(
               static_cast<uint8_t>((*c->data)[c->pos + i]))
           << (8 * i);
  }
  c->pos += 4;
  *v = out;
  return Status::OK();
}

Status GetU64(Cursor* c, uint64_t* v) {
  if (c->Remaining() < 8) return Truncated("u64");
  uint64_t out = 0;
  for (int i = 0; i < 8; ++i) {
    out |= static_cast<uint64_t>(
               static_cast<uint8_t>((*c->data)[c->pos + i]))
           << (8 * i);
  }
  c->pos += 8;
  *v = out;
  return Status::OK();
}

Status GetString(Cursor* c, std::string* s) {
  uint32_t n = 0;
  RDB_RETURN_NOT_OK(GetU32(c, &n));
  if (c->Remaining() < n) return Truncated("string body");
  s->assign(*c->data, c->pos, n);
  c->pos += n;
  return Status::OK();
}

std::string EncodeFrame(const Frame& f) {
  std::string out;
  out.reserve(kHeaderBytes + f.payload.size());
  PutU8(&out, kMagic);
  PutU8(&out, f.version);
  PutU8(&out, static_cast<uint8_t>(f.kind));
  PutU8(&out, f.flags);
  PutU32(&out, static_cast<uint32_t>(f.payload.size()));
  PutU64(&out, f.request_id);
  out.append(f.payload);
  return out;
}

void FrameDecoder::Feed(const char* data, size_t n) {
  if (!error_.empty()) return;
  // Compact the consumed prefix before it dominates the buffer.
  if (pos_ > 4096 && pos_ > buf_.size() / 2) {
    buf_.erase(0, pos_);
    pos_ = 0;
  }
  buf_.append(data, n);
}

FrameDecoder::Outcome FrameDecoder::Next(Frame* out) {
  if (!error_.empty()) return Outcome::kError;
  if (buf_.size() - pos_ < kHeaderBytes) return Outcome::kNeedMore;
  Cursor c{&buf_, pos_};
  uint8_t magic = 0, version = 0, kind = 0, flags = 0;
  uint32_t len = 0;
  uint64_t rid = 0;
  // Header reads cannot fail: kHeaderBytes are buffered.
  (void)GetU8(&c, &magic);
  (void)GetU8(&c, &version);
  (void)GetU8(&c, &kind);
  (void)GetU8(&c, &flags);
  (void)GetU32(&c, &len);
  (void)GetU64(&c, &rid);
  if (magic != kMagic) {
    error_ = StrFormat("bad magic byte 0x%02x", magic);
    return Outcome::kError;
  }
  if (version == 0 || version > kProtocolVersion) {
    error_ = StrFormat("unsupported protocol version %u", version);
    return Outcome::kError;
  }
  if (!IsKnownFrameKind(kind)) {
    error_ = StrFormat("unknown frame kind %u", kind);
    return Outcome::kError;
  }
  if (len > max_frame_bytes_) {
    error_ = StrFormat("frame payload of %u bytes exceeds the %zu-byte cap",
                       len, max_frame_bytes_);
    return Outcome::kError;
  }
  if (buf_.size() - c.pos < len) return Outcome::kNeedMore;
  out->version = version;
  out->kind = static_cast<FrameKind>(kind);
  out->flags = flags;
  out->request_id = rid;
  out->payload.assign(buf_, c.pos, len);
  pos_ = c.pos + len;
  return Outcome::kFrame;
}

std::string EncodeHello(const HelloPayload& h) {
  std::string out;
  PutU8(&out, h.min_version);
  PutU8(&out, h.max_version);
  return out;
}

Result<HelloPayload> DecodeHello(const std::string& payload) {
  Cursor c{&payload};
  HelloPayload h;
  RDB_RETURN_NOT_OK(GetU8(&c, &h.min_version));
  RDB_RETURN_NOT_OK(GetU8(&c, &h.max_version));
  if (h.min_version > h.max_version)
    return Status::InvalidArgument("HELLO with empty version range");
  return h;
}

std::string EncodeWelcome(const WelcomePayload& w) {
  std::string out;
  PutU8(&out, w.version);
  PutU32(&out, w.max_inflight);
  return out;
}

Result<WelcomePayload> DecodeWelcome(const std::string& payload) {
  Cursor c{&payload};
  WelcomePayload w;
  RDB_RETURN_NOT_OK(GetU8(&c, &w.version));
  RDB_RETURN_NOT_OK(GetU32(&c, &w.max_inflight));
  return w;
}

void ExtractLineCol(const std::string& message, uint32_t* line,
                    uint32_t* col) {
  *line = 0;
  *col = 0;
  // Every SQL-layer error embeds a LineColAt-rendered "L:C". Take the last
  // digits:digits token in the message; when none exists, leave 0:0.
  for (size_t i = message.size(); i-- > 0;) {
    if (message[i] != ':') continue;
    size_t ls = i;
    while (ls > 0 && std::isdigit(static_cast<unsigned char>(message[ls - 1])))
      --ls;
    size_t ce = i + 1;
    while (ce < message.size() &&
           std::isdigit(static_cast<unsigned char>(message[ce])))
      ++ce;
    if (ls == i || ce == i + 1) continue;
    *line = static_cast<uint32_t>(
        std::strtoul(message.substr(ls, i - ls).c_str(), nullptr, 10));
    *col = static_cast<uint32_t>(
        std::strtoul(message.substr(i + 1, ce - i - 1).c_str(), nullptr, 10));
    return;
  }
}

std::string EncodeError(const Status& st) {
  std::string out;
  PutU8(&out, static_cast<uint8_t>(st.code()));
  uint32_t line = 0, col = 0;
  ExtractLineCol(st.message(), &line, &col);
  PutU32(&out, line);
  PutU32(&out, col);
  PutString(&out, st.message());
  return out;
}

Result<ErrorPayload> DecodeError(const std::string& payload) {
  Cursor c{&payload};
  ErrorPayload e;
  uint8_t code = 0;
  RDB_RETURN_NOT_OK(GetU8(&c, &code));
  if (code > static_cast<uint8_t>(StatusCode::kWriteConflict))
    return Status::InvalidArgument("ERROR frame with unknown status code");
  e.code = static_cast<StatusCode>(code);
  RDB_RETURN_NOT_OK(GetU32(&c, &e.line));
  RDB_RETURN_NOT_OK(GetU32(&c, &e.col));
  RDB_RETURN_NOT_OK(GetString(&c, &e.message));
  return e;
}

// --- typed result sets ------------------------------------------------------

namespace {

/// Wire tags for TypeTag; the numeric values are part of the protocol, so
/// they are pinned here rather than relying on the enum's layout.
uint8_t WireTypeTag(TypeTag t) { return static_cast<uint8_t>(t); }

Result<TypeTag> TypeTagFromWire(uint8_t v) {
  if (v > static_cast<uint8_t>(TypeTag::kStr))
    return Status::InvalidArgument("result set carries unknown type tag");
  return static_cast<TypeTag>(v);
}

uint64_t DblBits(double d) {
  uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(d));
  std::memcpy(&bits, &d, sizeof(bits));
  return bits;
}

double DblFromBits(uint64_t bits) {
  double d = 0;
  std::memcpy(&d, &bits, sizeof(d));
  return d;
}

void EncodeScalar(std::string* out, const Scalar& s) {
  PutU8(out, WireTypeTag(s.tag()));
  switch (s.tag()) {
    case TypeTag::kVoid:
      break;
    case TypeTag::kBit:
      PutU8(out, static_cast<uint8_t>(s.Get<int8_t>()));
      break;
    case TypeTag::kInt:
    case TypeTag::kDate:
      PutU32(out, static_cast<uint32_t>(s.Get<int32_t>()));
      break;
    case TypeTag::kLng:
      PutU64(out, static_cast<uint64_t>(s.Get<int64_t>()));
      break;
    case TypeTag::kOid:
      PutU64(out, s.Get<Oid>());
      break;
    case TypeTag::kDbl:
      PutU64(out, DblBits(s.Get<double>()));
      break;
    case TypeTag::kStr:
      PutString(out, s.AsStr());
      break;
  }
}

Result<Scalar> DecodeScalar(Cursor* c) {
  uint8_t raw = 0;
  RDB_RETURN_NOT_OK(GetU8(c, &raw));
  RDB_ASSIGN_OR_RETURN(TypeTag tag, TypeTagFromWire(raw));
  switch (tag) {
    case TypeTag::kVoid:
      return Scalar();
    case TypeTag::kBit: {
      uint8_t v = 0;
      RDB_RETURN_NOT_OK(GetU8(c, &v));
      // Rebuild through the nil-preserving path: Bit() normalises to 0/1,
      // which would corrupt an in-band nil marker.
      int8_t phys = static_cast<int8_t>(v);
      if (IsNil(phys)) return Scalar::Nil(TypeTag::kBit);
      return Scalar::Bit(phys != 0);
    }
    case TypeTag::kInt: {
      uint32_t v = 0;
      RDB_RETURN_NOT_OK(GetU32(c, &v));
      return Scalar::Int(static_cast<int32_t>(v));
    }
    case TypeTag::kDate: {
      uint32_t v = 0;
      RDB_RETURN_NOT_OK(GetU32(c, &v));
      return Scalar::DateVal(static_cast<int32_t>(v));
    }
    case TypeTag::kLng: {
      uint64_t v = 0;
      RDB_RETURN_NOT_OK(GetU64(c, &v));
      return Scalar::Lng(static_cast<int64_t>(v));
    }
    case TypeTag::kOid: {
      uint64_t v = 0;
      RDB_RETURN_NOT_OK(GetU64(c, &v));
      return Scalar::OidVal(v);
    }
    case TypeTag::kDbl: {
      uint64_t v = 0;
      RDB_RETURN_NOT_OK(GetU64(c, &v));
      return Scalar::Dbl(DblFromBits(v));
    }
    case TypeTag::kStr: {
      std::string s;
      RDB_RETURN_NOT_OK(GetString(c, &s));
      return Scalar::Str(std::move(s));
    }
  }
  return Status::Internal("unreachable scalar tag");
}

void EncodeSide(std::string* out, const BatSide& side, size_t count) {
  if (side.dense()) {
    PutU8(out, 1);
    PutU64(out, side.seq);
    return;
  }
  PutU8(out, 0);
  PutU8(out, WireTypeTag(side.type));
  VisitPhysical(side.type, [&](auto tag) {
    using T = typename decltype(tag)::type;
    const T* data = side.col->Data<T>().data() + side.offset;
    for (size_t i = 0; i < count; ++i) {
      if constexpr (std::is_same_v<T, int8_t>) {
        PutU8(out, static_cast<uint8_t>(data[i]));
      } else if constexpr (std::is_same_v<T, int32_t>) {
        PutU32(out, static_cast<uint32_t>(data[i]));
      } else if constexpr (std::is_same_v<T, int64_t>) {
        PutU64(out, static_cast<uint64_t>(data[i]));
      } else if constexpr (std::is_same_v<T, Oid>) {
        PutU64(out, data[i]);
      } else if constexpr (std::is_same_v<T, double>) {
        PutU64(out, DblBits(data[i]));
      } else {
        PutString(out, data[i]);
      }
    }
  });
}

Result<BatSide> DecodeSide(Cursor* c, size_t count) {
  uint8_t dense = 0;
  RDB_RETURN_NOT_OK(GetU8(c, &dense));
  if (dense != 0) {
    uint64_t seq = 0;
    RDB_RETURN_NOT_OK(GetU64(c, &seq));
    return BatSide::Dense(seq);
  }
  uint8_t raw = 0;
  RDB_RETURN_NOT_OK(GetU8(c, &raw));
  RDB_ASSIGN_OR_RETURN(TypeTag tag, TypeTagFromWire(raw));
  if (tag == TypeTag::kVoid)
    return Status::InvalidArgument("materialised side cannot be :void");
  return VisitPhysical(tag, [&](auto t) -> Result<BatSide> {
    using T = typename decltype(t)::type;
    if constexpr (!std::is_same_v<T, std::string>) {
      // Reject a corrupt count before allocating for it. Divide rather
      // than multiply: count * elem can wrap for an adversarial count
      // (e.g. 0x2000000000000001 * 8 == 8) and sail past the check into
      // a throwing reserve().
      const size_t elem = std::is_same_v<T, int8_t> ? 1
                          : std::is_same_v<T, int32_t> ? 4
                                                       : 8;
      if (count > c->Remaining() / elem)
        return Truncated("column values");
      std::vector<T> vals;
      vals.reserve(count);
      for (size_t i = 0; i < count; ++i) {
        if constexpr (std::is_same_v<T, int8_t>) {
          uint8_t v = 0;
          RDB_RETURN_NOT_OK(GetU8(c, &v));
          vals.push_back(static_cast<int8_t>(v));
        } else if constexpr (std::is_same_v<T, int32_t>) {
          uint32_t v = 0;
          RDB_RETURN_NOT_OK(GetU32(c, &v));
          vals.push_back(static_cast<int32_t>(v));
        } else if constexpr (std::is_same_v<T, Oid>) {
          uint64_t v = 0;
          RDB_RETURN_NOT_OK(GetU64(c, &v));
          vals.push_back(v);
        } else if constexpr (std::is_same_v<T, double>) {
          uint64_t v = 0;
          RDB_RETURN_NOT_OK(GetU64(c, &v));
          vals.push_back(DblFromBits(v));
        } else {
          uint64_t v = 0;
          RDB_RETURN_NOT_OK(GetU64(c, &v));
          vals.push_back(static_cast<int64_t>(v));
        }
      }
      return BatSide::Materialized(Column::Make<T>(tag, std::move(vals)));
    } else {
      std::vector<std::string> vals;
      vals.reserve(count < c->Remaining() ? count : c->Remaining());
      for (size_t i = 0; i < count; ++i) {
        std::string s;
        RDB_RETURN_NOT_OK(GetString(c, &s));
        vals.push_back(std::move(s));
      }
      return BatSide::Materialized(Column::Make<std::string>(
          TypeTag::kStr, std::move(vals)));
    }
  });
}

}  // namespace

std::string EncodeResultSet(const QueryResult& r) {
  std::string out;
  PutU32(&out, static_cast<uint32_t>(r.values.size()));
  for (const auto& [label, v] : r.values) {
    PutString(&out, label);
    if (v.is_bat()) {
      const Bat& b = *v.bat();
      PutU8(&out, 1);
      PutU64(&out, b.size());
      EncodeSide(&out, b.head(), b.size());
      EncodeSide(&out, b.tail(), b.size());
    } else {
      PutU8(&out, 0);
      EncodeScalar(&out, v.scalar());
    }
  }
  return out;
}

Result<QueryResult> DecodeResultSet(const std::string& payload) {
  Cursor c{&payload};
  uint32_t ncols = 0;
  RDB_RETURN_NOT_OK(GetU32(&c, &ncols));
  QueryResult r;
  for (uint32_t i = 0; i < ncols; ++i) {
    std::string label;
    RDB_RETURN_NOT_OK(GetString(&c, &label));
    uint8_t is_bat = 0;
    RDB_RETURN_NOT_OK(GetU8(&c, &is_bat));
    if (is_bat != 0) {
      uint64_t count = 0;
      RDB_RETURN_NOT_OK(GetU64(&c, &count));
      // A materialized side costs >= 1 byte per row, so its count is
      // checked against the remaining payload inside DecodeSide. A
      // dense/dense bat encodes in 19 bytes regardless of count, so an
      // adversarial row count there is bounded by kMaxWireRows instead —
      // downstream consumers iterate `count` rows and must not be handed
      // a 2^61-row loop by a corrupt server.
      if (count > kMaxWireRows)
        return Status::InvalidArgument(
            StrFormat("result set row count %llu exceeds the wire cap",
                      static_cast<unsigned long long>(count)));
      RDB_ASSIGN_OR_RETURN(BatSide head, DecodeSide(&c, count));
      RDB_ASSIGN_OR_RETURN(BatSide tail, DecodeSide(&c, count));
      r.values.emplace_back(std::move(label),
                            Bat::Make(std::move(head), std::move(tail),
                                      count));
    } else {
      RDB_ASSIGN_OR_RETURN(Scalar s, DecodeScalar(&c));
      r.values.emplace_back(std::move(label), std::move(s));
    }
  }
  if (c.Remaining() != 0)
    return Status::InvalidArgument("trailing bytes after result set");
  return r;
}

}  // namespace recycledb::net
