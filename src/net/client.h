#ifndef RECYCLEDB_NET_CLIENT_H_
#define RECYCLEDB_NET_CLIENT_H_

#include <cstdint>
#include <string>

#include "net/protocol.h"

namespace recycledb::net {

/// Client connection settings.
struct ClientConfig {
  std::string host = "127.0.0.1";
  uint16_t port = 0;
  /// Per-attempt connect timeout.
  double connect_timeout_ms = 5000;
  /// Send/receive timeout for each blocking call.
  double io_timeout_ms = 30000;
  /// Extra connect attempts while the server refuses the connection (it
  /// may still be binding); waits retry_delay_ms between attempts.
  int connect_retries = 40;
  double retry_delay_ms = 50;
};

/// Blocking client for the RecycleDB wire protocol: one TCP connection,
/// one request at a time. Connect() performs the HELLO/WELCOME handshake;
/// each call sends a request frame and blocks for its response. Results
/// arrive as real QueryResult objects (typed columns, dense sides), so
/// client-side rendering matches the in-process result byte for byte.
///
/// Not thread-safe: callers serialise access externally.
class Client {
 public:
  Client() = default;
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  Status Connect(const ClientConfig& cfg);
  void Close();
  bool connected() const { return fd_ >= 0; }

  uint8_t negotiated_version() const { return version_; }
  /// The server's advertised per-connection admission window.
  uint32_t server_max_inflight() const { return server_max_inflight_; }
  /// True when WELCOME advertised MVCC snapshot reads (SELECTs never block
  /// on, nor observe, commits that land while they run).
  bool server_snapshot_reads() const { return server_snapshot_reads_; }

  struct Response {
    QueryResult result;
    /// Trace text when the server traced the query (TRACE SELECT or the
    /// session trace option); empty otherwise.
    std::string trace;
  };

  /// Runs a SELECT / TRACE SELECT and decodes the typed result set.
  Result<Response> Query(const std::string& sql);

  /// Runs a DML statement (INSERT / DELETE / COMMIT).
  Result<QueryResult> Execute(const std::string& sql);

  Status Ping();

  /// Fetches the server's metrics dump (JSON or Prometheus text).
  Result<std::string> Metrics(bool prometheus);

  /// Sets a session option ("autocommit" or "trace") on or off.
  Status SetOption(const std::string& name, bool on);

  /// Requests cancellation of an earlier request id. With this blocking
  /// client every call completes before the next starts, so this is mostly
  /// useful against ids issued on other connections' behalf in tests.
  Status Cancel(uint64_t target_request_id);

  /// The request id the next request will use (ids are per-connection).
  uint64_t next_request_id() const { return next_rid_; }

  /// True for the server's admission-control rejection: back off and
  /// retry.
  static bool IsBusy(const Status& st);

 private:
  Status SendRequest(FrameKind kind, uint64_t rid, const std::string& payload);
  /// Reads frames until one answers `rid`; responses for other request ids
  /// are discarded (this client never has two requests outstanding).
  Status ReadResponse(uint64_t rid, Frame* out);
  Status ReadBytes(char* buf, size_t n);
  Status FillDecoder();

  int fd_ = -1;
  ClientConfig cfg_;
  uint8_t version_ = 0;
  uint32_t server_max_inflight_ = 0;
  bool server_snapshot_reads_ = false;
  uint64_t next_rid_ = 1;
  FrameDecoder decoder_{kDefaultMaxFrameBytes};
};

}  // namespace recycledb::net

#endif  // RECYCLEDB_NET_CLIENT_H_
