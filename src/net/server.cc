#include "net/server.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cctype>
#include <cerrno>
#include <cstring>
#include <utility>

#include "util/str.h"
#include "util/timer.h"

namespace recycledb::net {

namespace {

uint64_t MsToUs(double ms) {
  return ms <= 0 ? 0 : static_cast<uint64_t>(ms * 1e3);
}

/// First keyword of a statement, lower-cased: routes QUERY text to the
/// worker pool and DML text to the executor thread even when a client uses
/// the "wrong" frame kind (the server never trusts the kind for routing —
/// DML on the I/O loop would stall every connection behind the exclusive
/// update lock).
std::string FirstWordLower(const std::string& sql) {
  size_t i = 0;
  while (i < sql.size() && std::isspace(static_cast<unsigned char>(sql[i])))
    ++i;
  std::string word;
  while (i < sql.size() &&
         std::isalpha(static_cast<unsigned char>(sql[i]))) {
    word.push_back(static_cast<char>(
        std::tolower(static_cast<unsigned char>(sql[i]))));
    ++i;
  }
  return word;
}

bool IsSelectText(const std::string& sql) {
  const std::string w = FirstWordLower(sql);
  return w == "select" || w == "trace";
}

void SetNonBlocking(int fd) {
  int flags = fcntl(fd, F_GETFL, 0);
  if (flags >= 0) fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

}  // namespace

RecycleServer::RecycleServer(QueryService* svc, NetConfig cfg)
    : svc_(svc), cfg_(std::move(cfg)) {
  if (cfg_.max_inflight_per_conn == 0) cfg_.max_inflight_per_conn = 1;
  // Registration is idempotent, so a server restarted over the same
  // service resumes its metrics rather than duplicating them.
  obs::MetricsRegistry& reg = svc_->metrics();
  g_connections_ = reg.AddGauge("net_connections_active");
  c_conn_opened_ = reg.AddCounter("net_connections_opened");
  c_conn_closed_ = reg.AddCounter("net_connections_closed");
  c_requests_ = reg.AddCounter("net_requests");
  c_busy_ = reg.AddCounter("net_busy_rejections");
  c_proto_errors_ = reg.AddCounter("net_protocol_errors");
  c_cancelled_ = reg.AddCounter("queries_cancelled");
  c_bytes_read_ = reg.AddCounter("net_bytes_read");
  c_bytes_written_ = reg.AddCounter("net_bytes_written");
  h_decode_us_ = reg.AddHistogram("net_decode_us");
  h_queue_us_ = reg.AddHistogram("net_queue_us");
  h_request_us_ = reg.AddHistogram("net_request_us");
}

RecycleServer::~RecycleServer() {
  Stop();
  if (listen_fd_ >= 0) close(listen_fd_);
  if (wake_rd_ >= 0) close(wake_rd_);
  if (wake_wr_ >= 0) close(wake_wr_);
}

Status RecycleServer::Start() {
  if (started_.exchange(true))
    return Status::Internal("server already started");

  listen_fd_ = socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (listen_fd_ < 0)
    return Status::Internal(StrFormat("socket: %s", std::strerror(errno)));
  int one = 1;
  setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(cfg_.port);
  if (inet_pton(AF_INET, cfg_.host.c_str(), &addr.sin_addr) != 1)
    return Status::InvalidArgument("bad listen host '" + cfg_.host + "'");
  if (bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0)
    return Status::Internal(StrFormat("bind %s:%u: %s", cfg_.host.c_str(),
                                      cfg_.port, std::strerror(errno)));
  if (listen(listen_fd_, 64) != 0)
    return Status::Internal(StrFormat("listen: %s", std::strerror(errno)));

  sockaddr_in bound{};
  socklen_t blen = sizeof(bound);
  getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &blen);
  port_ = ntohs(bound.sin_port);

  int pipefd[2];
  if (pipe2(pipefd, O_NONBLOCK | O_CLOEXEC) != 0)
    return Status::Internal(StrFormat("pipe2: %s", std::strerror(errno)));
  wake_rd_ = pipefd[0];
  wake_wr_ = pipefd[1];

  last_pressure_epoch_ = cfg_.pressure_epoch_fn
                             ? cfg_.pressure_epoch_fn()
                             : svc_->governor().TotalPressureEpoch();
  pressure_until_ms_ = 0;

  running_.store(true, std::memory_order_release);
  io_thread_ = std::thread([this] { IoLoop(); });
  dml_thread_ = std::thread([this] { DmlLoop(); });
  return Status::OK();
}

void RecycleServer::Stop() {
  if (!started_.load(std::memory_order_acquire) || stopped_) return;
  stop_requested_.store(true, std::memory_order_release);
  {
    std::lock_guard<std::mutex> lock(comp_mu_);
    WakeLocked();
  }
  if (io_thread_.joinable()) io_thread_.join();
  // The I/O loop only exits once total_inflight_ hit zero, so the DML
  // queue is empty here and the executor joins immediately.
  {
    std::lock_guard<std::mutex> lock(dml_mu_);
    dml_stop_ = true;
  }
  dml_cv_.notify_all();
  if (dml_thread_.joinable()) dml_thread_.join();
  SetConnGauge(0);
  running_.store(false, std::memory_order_release);
  stopped_ = true;
}

void RecycleServer::SetConnGauge(size_t n) {
  conn_gauge_value_.store(n, std::memory_order_relaxed);
  g_connections_->Set(n);
}

void RecycleServer::WakeLocked() {
  char b = 1;
  // EAGAIN means a wake byte is already pending — the loop will run.
  ssize_t ignored = write(wake_wr_, &b, 1);
  (void)ignored;
}

void RecycleServer::PostCompletion(uint64_t conn_id, uint64_t rid,
                                   Result<QueryResult> r) {
  // The wake write happens while the mutex is held: the I/O loop drains
  // completions under the same mutex, so by the time it can observe this
  // completion, this thread is done touching the server. That makes
  // Stop()'s "drain then join" safe against a poster mid-call.
  std::lock_guard<std::mutex> lock(comp_mu_);
  completions_.push_back(Completion{conn_id, rid, std::move(r)});
  WakeLocked();
}

bool RecycleServer::PressureActive() {
  const uint64_t epoch = cfg_.pressure_epoch_fn
                             ? cfg_.pressure_epoch_fn()
                             : svc_->governor().TotalPressureEpoch();
  const double now = NowMillis();
  if (epoch != last_pressure_epoch_) {
    last_pressure_epoch_ = epoch;
    pressure_until_ms_ = now + cfg_.pressure_window_ms;
  }
  return now < pressure_until_ms_;
}

uint32_t RecycleServer::EffectiveWindow() {
  return PressureActive() ? cfg_.pressure_inflight
                          : cfg_.max_inflight_per_conn;
}

size_t RecycleServer::EffectivePendingCap() {
  return PressureActive() ? 0 : cfg_.max_pending_per_conn;
}

// --- I/O loop ----------------------------------------------------------------

void RecycleServer::IoLoop() {
  std::vector<pollfd> pfds;
  std::vector<uint64_t> pfd_conn;  ///< conn id per pollfd (0 = not a conn)

  while (true) {
    // Reap conns closed during the previous round: only now is it certain
    // that no stack frame still holds a pointer into them.
    graveyard_.clear();
    if (stop_requested_.load(std::memory_order_acquire) && !draining_)
      BeginDrain();
    if (draining_) {
      // Connections with nothing left to say can go now; the rest flush.
      std::vector<uint64_t> done;
      for (auto& [id, conn] : conns_)
        if (conn->inflight == 0 && conn->woff == conn->wbuf.size())
          done.push_back(id);
      for (uint64_t id : done) CloseConn(id);
      if (DrainComplete()) break;
    }

    pfds.clear();
    pfd_conn.clear();
    pfds.push_back({wake_rd_, POLLIN, 0});
    pfd_conn.push_back(0);
    if (!draining_ && listen_fd_ >= 0) {
      pfds.push_back({listen_fd_, POLLIN, 0});
      pfd_conn.push_back(0);
    }
    for (auto& [id, conn] : conns_) {
      short events = 0;
      if (!conn->stop_reading) events |= POLLIN;
      if (conn->woff < conn->wbuf.size()) events |= POLLOUT;
      if (events == 0) events = POLLIN;  // at least detect disconnects
      pfds.push_back({conn->fd, events, 0});
      pfd_conn.push_back(id);
    }

    int rc = poll(pfds.data(), static_cast<nfds_t>(pfds.size()), -1);
    if (rc < 0) {
      if (errno == EINTR) continue;
      break;  // unrecoverable poll failure
    }

    if (pfds[0].revents & POLLIN) {
      char buf[256];
      while (read(wake_rd_, buf, sizeof(buf)) > 0) {
      }
    }
    ProcessCompletions();

    for (size_t i = 1; i < pfds.size(); ++i) {
      if (pfds[i].revents == 0) continue;
      if (pfds[i].fd == listen_fd_ && pfd_conn[i] == 0) {
        AcceptNew();
        continue;
      }
      auto it = conns_.find(pfd_conn[i]);
      if (it == conns_.end()) continue;
      Conn* conn = it->second.get();
      if (pfds[i].revents & (POLLERR | POLLHUP | POLLNVAL)) {
        // Mid-frame or mid-response disconnect: drop the connection; any
        // in-flight completions for it are discarded on arrival.
        CloseConn(conn->id);
        continue;
      }
      if (pfds[i].revents & POLLOUT) FlushConn(conn);
      if ((pfds[i].revents & POLLIN) && conns_.count(pfd_conn[i]))
        ReadConn(conn);
    }
  }

  // Exit: close whatever is left (normally nothing unless poll failed).
  std::vector<uint64_t> left;
  for (auto& [id, conn] : conns_) left.push_back(id);
  for (uint64_t id : left) CloseConn(id);
  graveyard_.clear();
  if (listen_fd_ >= 0) {
    close(listen_fd_);
    listen_fd_ = -1;
  }
}

void RecycleServer::BeginDrain() {
  draining_ = true;
  if (listen_fd_ >= 0) {
    close(listen_fd_);
    listen_fd_ = -1;
  }
  const Status shutdown = Status::Internal("server shutting down");
  // SendError can close the conn it writes to (send failure), which erases
  // from conns_ — iterate over an id snapshot, never the live map.
  std::vector<uint64_t> ids;
  ids.reserve(conns_.size());
  for (auto& [id, conn] : conns_) ids.push_back(id);
  for (uint64_t id : ids) {
    auto it = conns_.find(id);
    if (it == conns_.end()) continue;
    Conn* conn = it->second.get();
    conn->stop_reading = true;
    for (PendingReq& req : conn->pending) SendError(conn, req.rid, shutdown);
    conn->pending.clear();
    conn->close_after_flush = true;
  }
}

bool RecycleServer::DrainComplete() const {
  if (total_inflight_.load(std::memory_order_acquire) != 0) return false;
  {
    std::lock_guard<std::mutex> lock(
        const_cast<std::mutex&>(comp_mu_));
    if (!completions_.empty()) return false;
  }
  return conns_.empty();
}

void RecycleServer::AcceptNew() {
  while (true) {
    int fd = accept4(listen_fd_, nullptr, nullptr,
                     SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) return;  // EAGAIN or transient error: try next poll round
    if (conns_.size() >= static_cast<size_t>(cfg_.max_connections)) {
      // Over the connection cap: one best-effort BUSY frame, then close.
      Frame f;
      f.kind = FrameKind::kBusy;
      std::string payload;
      PutString(&payload, "connection limit reached");
      f.payload = std::move(payload);
      std::string bytes = EncodeFrame(f);
      ssize_t ignored = send(fd, bytes.data(), bytes.size(), MSG_NOSIGNAL);
      (void)ignored;
      // Drain whatever the client already pipelined (typically its HELLO):
      // closing with unread data pending makes the kernel RST, which can
      // discard the BUSY frame out of the peer's receive queue.
      char drain[1024];
      while (recv(fd, drain, sizeof(drain), 0) > 0) {
      }
      close(fd);
      c_busy_->Add(1);
      continue;
    }
    int one = 1;
    setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    SetNonBlocking(fd);
    auto conn = std::make_unique<Conn>(cfg_.max_frame_bytes);
    conn->id = next_conn_id_++;
    conn->fd = fd;
    conns_.emplace(conn->id, std::move(conn));
    c_conn_opened_->Add(1);
    SetConnGauge(conns_.size());
  }
}

void RecycleServer::ReadConn(Conn* conn) {
  char buf[64 * 1024];
  while (true) {
    ssize_t n = recv(conn->fd, buf, sizeof(buf), 0);
    if (n > 0) {
      c_bytes_read_->Add(static_cast<uint64_t>(n));
      conn->decoder.Feed(buf, static_cast<size_t>(n));
      if (static_cast<size_t>(n) < sizeof(buf)) break;
      continue;
    }
    if (n == 0) {  // EOF: peer closed (possibly mid-frame)
      CloseConn(conn->id);
      return;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    if (errno == EINTR) continue;
    CloseConn(conn->id);
    return;
  }

  const uint64_t conn_id = conn->id;
  while (conns_.count(conn_id) && !conn->stop_reading) {
    Frame frame;
    StopWatch sw;
    FrameDecoder::Outcome out = conn->decoder.Next(&frame);
    if (out == FrameDecoder::Outcome::kNeedMore) break;
    if (out == FrameDecoder::Outcome::kError) {
      // Framing is lost: report once, then close. Never crash, never hang.
      c_proto_errors_->Add(1);
      SendError(conn, 0,
                Status::InvalidArgument("protocol error: " +
                                        conn->decoder.error()));
      conn->stop_reading = true;
      conn->close_after_flush = true;
      break;
    }
    h_decode_us_->Record(MsToUs(sw.ElapsedMillis()));
    HandleFrame(conn, std::move(frame));
  }
  // HandleFrame may have closed the connection; flush only if it lives.
  auto it = conns_.find(conn_id);
  if (it != conns_.end()) FlushConn(it->second.get());
}

void RecycleServer::HandleFrame(Conn* conn, Frame frame) {
  if (!conn->hello_done) {
    if (frame.kind != FrameKind::kHello) {
      c_proto_errors_->Add(1);
      SendError(conn, frame.request_id,
                Status::InvalidArgument("expected HELLO as first frame"));
      conn->stop_reading = true;
      conn->close_after_flush = true;
      return;
    }
    auto hello = DecodeHello(frame.payload);
    if (!hello.ok() || hello.value().min_version > kProtocolVersion) {
      c_proto_errors_->Add(1);
      SendError(conn, frame.request_id,
                !hello.ok() ? hello.status()
                            : Status::InvalidArgument(StrFormat(
                                  "no common protocol version (server "
                                  "speaks <= %u)",
                                  kProtocolVersion)));
      conn->stop_reading = true;
      conn->close_after_flush = true;
      return;
    }
    conn->hello_done = true;
    WelcomePayload w;
    w.version = kProtocolVersion < hello.value().max_version
                    ? kProtocolVersion
                    : hello.value().max_version;
    w.max_inflight = cfg_.max_inflight_per_conn;
    // Advertise MVCC snapshot reads so clients know SELECTs never serialise
    // against (or observe) concurrent commits.
    const uint8_t wflags =
        svc_->config().snapshot_reads ? kWelcomeFlagSnapshotReads : 0;
    SendFrame(conn, FrameKind::kWelcome, frame.request_id, EncodeWelcome(w),
              wflags);
    return;
  }

  switch (frame.kind) {
    case FrameKind::kPing:
      SendFrame(conn, FrameKind::kPong, frame.request_id, "");
      return;
    case FrameKind::kMetrics: {
      Cursor c{&frame.payload};
      uint8_t format = 0;
      if (!GetU8(&c, &format).ok() || format > 1) {
        SendError(conn, frame.request_id,
                  Status::InvalidArgument("METRICS format must be 0 (JSON) "
                                          "or 1 (Prometheus)"));
        return;
      }
      std::string text = format == 0 ? svc_->DumpMetricsJson()
                                     : svc_->DumpMetricsPrometheus();
      std::string payload;
      PutString(&payload, text);
      SendFrame(conn, FrameKind::kMetricsResult, frame.request_id,
                std::move(payload));
      return;
    }
    case FrameKind::kSetOption: {
      Cursor c{&frame.payload};
      std::string name, value;
      if (!GetString(&c, &name).ok() || !GetString(&c, &value).ok() ||
          (value != "on" && value != "off")) {
        SendError(conn, frame.request_id,
                  Status::InvalidArgument(
                      "SET_OPTION expects name + \"on\"/\"off\""));
        return;
      }
      if (name == "autocommit") {
        conn->session->set_autocommit(value == "on");
      } else if (name == "trace") {
        conn->session->set_trace_all(value == "on");
      } else {
        SendError(conn, frame.request_id,
                  Status::InvalidArgument("unknown option '" + name + "'"));
        return;
      }
      SendFrame(conn, FrameKind::kOk, frame.request_id, "");
      return;
    }
    case FrameKind::kCancel:
      HandleCancel(conn, frame);
      return;
    case FrameKind::kQuery:
    case FrameKind::kDml: {
      Cursor c{&frame.payload};
      std::string sql;
      if (!GetString(&c, &sql).ok()) {
        SendError(conn, frame.request_id,
                  Status::InvalidArgument("malformed SQL payload"));
        return;
      }
      // Classify before the move: argument evaluation order is
      // unspecified, so IsSelectText must not race the std::move.
      const bool is_dml = !IsSelectText(sql);
      HandleRequest(conn, frame.request_id, is_dml, std::move(sql));
      return;
    }
    default:
      c_proto_errors_->Add(1);
      SendError(conn, frame.request_id,
                Status::InvalidArgument(
                    StrFormat("unexpected %s frame from a client",
                              FrameKindName(frame.kind))));
      return;
  }
}

void RecycleServer::HandleRequest(Conn* conn, uint64_t rid, bool is_dml,
                                  std::string sql) {
  c_requests_->Add(1);
  if (conn->submitted.count(rid) != 0) {
    SendError(conn, rid,
              Status::InvalidArgument("request_id already in flight"));
    return;
  }
  PendingReq req;
  req.rid = rid;
  req.is_dml = is_dml;
  req.sql = std::move(sql);
  req.recv_ms = NowMillis();
  if (conn->inflight < EffectiveWindow()) {
    Submit(conn, std::move(req));
  } else if (conn->pending.size() < EffectivePendingCap()) {
    conn->pending.push_back(std::move(req));
  } else {
    // Bounded queues + BUSY is the backpressure contract: under governor
    // pressure (or a flooding client) the server sheds load promptly
    // instead of queueing without bound.
    c_busy_->Add(1);
    std::string payload;
    PutString(&payload, "server busy, retry later");
    SendFrame(conn, FrameKind::kBusy, rid, std::move(payload));
  }
}

void RecycleServer::HandleCancel(Conn* conn, const Frame& frame) {
  Cursor c{&frame.payload};
  uint64_t target = 0;
  if (!GetU64(&c, &target).ok()) {
    SendError(conn, frame.request_id,
              Status::InvalidArgument("CANCEL expects a u64 request id"));
    return;
  }
  // Still parked in the pending queue: true cancel, it never runs.
  for (auto it = conn->pending.begin(); it != conn->pending.end(); ++it) {
    if (it->rid != target) continue;
    conn->pending.erase(it);
    c_cancelled_->Add(1);
    svc_->events().Record(obs::EventKind::kCancel,
                          static_cast<uint32_t>(conn->id), target,
                          /*b=*/0);
    SendFrame(conn, FrameKind::kCancelled, target, "");
    SendFrame(conn, FrameKind::kOk, frame.request_id, "");
    return;
  }
  // Already submitted: the query runs to completion (workers are not
  // interruptible mid-instruction), but its result is suppressed and the
  // client gets CANCELLED instead.
  auto it = conn->submitted.find(target);
  if (it != conn->submitted.end() && !it->second.cancelled) {
    it->second.cancelled = true;
    c_cancelled_->Add(1);
    svc_->events().Record(obs::EventKind::kCancel,
                          static_cast<uint32_t>(conn->id), target,
                          /*b=*/1);
    SendFrame(conn, FrameKind::kOk, frame.request_id, "");
    return;
  }
  SendError(conn, frame.request_id,
            Status::NotFound(StrFormat("request %llu is not in flight",
                                       static_cast<unsigned long long>(
                                           target))));
}

void RecycleServer::SubmitWhileOpen(Conn* conn) {
  while (conn->inflight < EffectiveWindow() && !conn->pending.empty()) {
    PendingReq req = std::move(conn->pending.front());
    conn->pending.pop_front();
    Submit(conn, std::move(req));
  }
}

void RecycleServer::Submit(Conn* conn, PendingReq req) {
  const double now = NowMillis();
  h_queue_us_->Record(MsToUs(now - req.recv_ms));
  conn->inflight += 1;
  conn->submitted.emplace(req.rid, ReqState{false, req.recv_ms});
  total_inflight_.fetch_add(1, std::memory_order_acq_rel);
  const uint64_t cid = conn->id;
  const uint64_t rid = req.rid;
  if (req.is_dml) {
    {
      std::lock_guard<std::mutex> lock(dml_mu_);
      dml_queue_.push_back(
          DmlJob{cid, rid, std::move(req.sql), conn->session});
    }
    dml_cv_.notify_one();
    return;
  }
  // The connection's session carries trace-all/autocommit, so no SQL-text
  // rewriting is needed; the service applies them per submission.
  Request qreq;
  qreq.sql = std::move(req.sql);
  qreq.session = conn->session.get();
  // The callback owns a session reference: the Session must outlive the
  // run even if the connection dies while the query executes.
  auto sess = conn->session;
  svc_->SubmitAsync(std::move(qreq),
                    [this, cid, rid, sess](Result<QueryResult> r) {
                      PostCompletion(cid, rid, std::move(r));
                    });
}

void RecycleServer::ProcessCompletions() {
  std::deque<Completion> batch;
  {
    std::lock_guard<std::mutex> lock(comp_mu_);
    batch.swap(completions_);
  }
  for (Completion& c : batch) CompleteOne(std::move(c));
}

void RecycleServer::CompleteOne(Completion c) {
  total_inflight_.fetch_sub(1, std::memory_order_acq_rel);
  auto it = conns_.find(c.conn_id);
  if (it == conns_.end()) return;  // connection died while it ran
  Conn* conn = it->second.get();
  auto rit = conn->submitted.find(c.rid);
  const bool cancelled = rit != conn->submitted.end() &&
                         rit->second.cancelled;
  const double recv_ms = rit != conn->submitted.end() ? rit->second.recv_ms
                                                      : 0;
  if (rit != conn->submitted.end()) conn->submitted.erase(rit);
  if (conn->inflight > 0) conn->inflight -= 1;

  if (cancelled) {
    SendFrame(conn, FrameKind::kCancelled, c.rid, "");
  } else if (c.result.ok()) {
    const QueryResult& r = c.result.value();
    std::string payload;
    PutString(&payload, EncodeResultSet(r));
    uint8_t flags = 0;
    if (r.trace != nullptr) {
      flags |= kFlagHasTrace;
      PutString(&payload, r.trace->ToString());
    }
    SendFrame(conn, FrameKind::kResult, c.rid, std::move(payload), flags);
  } else {
    SendFrame(conn, FrameKind::kError, c.rid, EncodeError(c.result.status()));
  }
  if (recv_ms > 0) h_request_us_->Record(MsToUs(NowMillis() - recv_ms));
  // The flush above may have closed the conn (send failure, or
  // close_after_flush with nothing left in flight) — don't submit for it.
  if (!draining_ && !conn->dead) SubmitWhileOpen(conn);
}

void RecycleServer::SendFrame(Conn* conn, FrameKind kind, uint64_t rid,
                              std::string payload, uint8_t flags) {
  if (conn->dead) return;
  Frame f;
  f.kind = kind;
  f.flags = flags;
  f.request_id = rid;
  f.payload = std::move(payload);
  conn->wbuf += EncodeFrame(f);
  // Try to push bytes out immediately; POLLOUT picks up any remainder.
  FlushConn(conn);
}

void RecycleServer::SendError(Conn* conn, uint64_t rid, const Status& st) {
  SendFrame(conn, FrameKind::kError, rid, EncodeError(st));
}

void RecycleServer::FlushConn(Conn* conn) {
  if (conn->dead) return;
  while (conn->woff < conn->wbuf.size()) {
    ssize_t n = send(conn->fd, conn->wbuf.data() + conn->woff,
                     conn->wbuf.size() - conn->woff, MSG_NOSIGNAL);
    if (n > 0) {
      c_bytes_written_->Add(static_cast<uint64_t>(n));
      conn->woff += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return;
    if (n < 0 && errno == EINTR) continue;
    CloseConn(conn->id);  // send failure: peer is gone
    return;
  }
  conn->wbuf.clear();
  conn->woff = 0;
  if (conn->close_after_flush && conn->inflight == 0 &&
      conn->pending.empty())
    CloseConn(conn->id);
}

void RecycleServer::CloseConn(uint64_t conn_id) {
  auto it = conns_.find(conn_id);
  if (it == conns_.end()) return;
  Conn* conn = it->second.get();
  conn->dead = true;
  close(conn->fd);
  conn->fd = -1;
  // In-flight requests of this connection keep total_inflight_ raised
  // until their completions arrive (and are then discarded), so drain
  // still waits for them. The object itself outlives this call in the
  // graveyard: callers up the stack (SendFrame → FlushConn → here) may
  // still hold the pointer, and every write path no-ops on `dead`.
  graveyard_.push_back(std::move(it->second));
  conns_.erase(it);
  c_conn_closed_->Add(1);
  SetConnGauge(conns_.size());
}

// --- DML executor ------------------------------------------------------------

void RecycleServer::DmlLoop() {
  while (true) {
    DmlJob job;
    {
      std::unique_lock<std::mutex> lock(dml_mu_);
      dml_cv_.wait(lock, [this] { return dml_stop_ || !dml_queue_.empty(); });
      if (dml_queue_.empty()) {
        if (dml_stop_) return;
        continue;
      }
      job = std::move(dml_queue_.front());
      dml_queue_.pop_front();
    }
    // Submit under the connection's session: the service folds the
    // session's autocommit into the statement's exclusive update hold, so
    // the INSERT/DELETE and its commit are atomic w.r.t. other sessions
    // (the pre-PR8 two-statement sequence could interleave).
    Request dreq;
    dreq.sql = std::move(job.sql);
    dreq.session = job.session.get();
    QueryHandle h = svc_->Submit(std::move(dreq));
    PostCompletion(job.conn_id, job.rid, h.future.get());
  }
}

}  // namespace recycledb::net
