#ifndef RECYCLEDB_NET_PROTOCOL_H_
#define RECYCLEDB_NET_PROTOCOL_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "interp/query_result.h"
#include "util/status.h"

namespace recycledb::net {

/// The RecycleDB wire protocol: length-prefixed binary frames over a byte
/// stream (see docs/PROTOCOL.md for the normative description).
///
/// Every frame is a fixed 16-byte header followed by `payload_len` payload
/// bytes. All integers are little-endian.
///
///   offset 0  u8   magic (kMagic)
///   offset 1  u8   version (kProtocolVersion; see HELLO negotiation)
///   offset 2  u8   kind (FrameKind)
///   offset 3  u8   flags (kind-specific; kFlagHasTrace on RESULT)
///   offset 4  u32  payload_len
///   offset 8  u64  request_id
///
/// Requests carry a client-chosen request_id; every response echoes the id
/// of the request it answers, so responses may be matched out of order.

inline constexpr uint8_t kMagic = 0xDB;
inline constexpr uint8_t kProtocolVersion = 1;
inline constexpr size_t kHeaderBytes = 16;

/// Upper bound a decoder enforces on payload_len before buffering: a
/// malicious or corrupt length must not make the peer allocate unbounded
/// memory. Both sides enforce it; oversized frames are a protocol error.
inline constexpr size_t kDefaultMaxFrameBytes = 64u << 20;

/// Upper bound on a result-set Bat's row count. Materialized sides are
/// additionally bounded by the payload (>= 1 byte per row), but a
/// dense/dense Bat encodes in O(1) bytes for any count, so the decoder
/// needs an explicit cap to keep a corrupt peer from handing consumers an
/// effectively unbounded row loop.
inline constexpr uint64_t kMaxWireRows = 1ull << 32;

/// Frame kinds. Requests (client -> server) and responses (server ->
/// client) share one namespace; responses start at 32.
enum class FrameKind : uint8_t {
  // Requests.
  kHello = 1,      ///< version negotiation; must be the first frame
  kQuery = 2,      ///< SQL SELECT / TRACE SELECT text
  kDml = 3,        ///< SQL INSERT / DELETE / COMMIT text
  kCancel = 4,     ///< payload: request_id of the request to cancel
  kPing = 5,       ///< liveness probe
  kMetrics = 6,    ///< payload: u8 format (0 = JSON, 1 = Prometheus)
  kSetOption = 7,  ///< session option: name + value strings

  // Responses.
  kWelcome = 32,        ///< HELLO accepted: negotiated version + limits
  kResult = 33,         ///< typed result set (+ trace text when flagged)
  kError = 34,          ///< status code + line:col + message
  kPong = 35,           ///< PING answer
  kMetricsResult = 36,  ///< metrics text in the requested format
  kBusy = 37,           ///< admission control rejected the request; retry
  kCancelled = 38,      ///< the request was cancelled before completion
  kOk = 39,             ///< generic success (SET_OPTION, CANCEL)
};

const char* FrameKindName(FrameKind k);
bool IsKnownFrameKind(uint8_t k);

/// RESULT flag: a trace text payload trails the result set.
inline constexpr uint8_t kFlagHasTrace = 0x1;

/// WELCOME flag: the server executes SELECTs as MVCC snapshot reads — a
/// query captures the catalog epoch at submission and never blocks on (nor
/// observes) commits that land while it runs. Clients may surface this to
/// decide read-your-writes expectations.
inline constexpr uint8_t kWelcomeFlagSnapshotReads = 0x1;

/// One decoded frame.
struct Frame {
  uint8_t version = kProtocolVersion;
  FrameKind kind = FrameKind::kPing;
  uint8_t flags = 0;
  uint64_t request_id = 0;
  std::string payload;
};

/// Serialises a frame (header + payload) ready to write to a socket.
std::string EncodeFrame(const Frame& f);

/// Incremental frame decoder over a received byte stream. Feed() appends
/// raw bytes; Next() yields complete frames. Malformed input (bad magic,
/// unsupported version, unknown kind, oversized length) flips the decoder
/// into a permanent error state — framing is lost, the connection must be
/// closed.
class FrameDecoder {
 public:
  explicit FrameDecoder(size_t max_frame_bytes = kDefaultMaxFrameBytes)
      : max_frame_bytes_(max_frame_bytes) {}

  void Feed(const char* data, size_t n);

  enum class Outcome {
    kFrame,     ///< *out was filled with the next complete frame
    kNeedMore,  ///< no complete frame buffered yet
    kError,     ///< permanent protocol error; see error()
  };
  Outcome Next(Frame* out);

  const std::string& error() const { return error_; }
  /// Bytes buffered but not yet consumed (a non-empty value at EOF means
  /// the peer disconnected mid-frame).
  size_t buffered_bytes() const { return buf_.size() - pos_; }

 private:
  size_t max_frame_bytes_;
  std::string buf_;
  size_t pos_ = 0;  ///< consumed prefix of buf_
  std::string error_;
};

// --- payload builders / parsers --------------------------------------------
//
// Primitive layer: strings are u32 length + bytes; integers little-endian.
// Parsers take a cursor and fail cleanly on truncated input — they are the
// robustness surface the decode-fuzz tests drive.

void PutU8(std::string* out, uint8_t v);
void PutU32(std::string* out, uint32_t v);
void PutU64(std::string* out, uint64_t v);
void PutString(std::string* out, const std::string& s);

struct Cursor {
  const std::string* data;
  size_t pos = 0;
  size_t Remaining() const { return data->size() - pos; }
};

Status GetU8(Cursor* c, uint8_t* v);
Status GetU32(Cursor* c, uint32_t* v);
Status GetU64(Cursor* c, uint64_t* v);
Status GetString(Cursor* c, std::string* s);

// --- typed payloads ---------------------------------------------------------

/// HELLO: the version range the client speaks.
struct HelloPayload {
  uint8_t min_version = kProtocolVersion;
  uint8_t max_version = kProtocolVersion;
};
std::string EncodeHello(const HelloPayload& h);
Result<HelloPayload> DecodeHello(const std::string& payload);

/// WELCOME: the negotiated version plus the server's per-connection
/// admission window (how many requests may be in flight at once before
/// BUSY responses start).
struct WelcomePayload {
  uint8_t version = kProtocolVersion;
  uint32_t max_inflight = 0;
};
std::string EncodeWelcome(const WelcomePayload& w);
Result<WelcomePayload> DecodeWelcome(const std::string& payload);

/// ERROR: the Status code, a best-effort 1-based source position (0:0 when
/// unknown — extracted from the "line:col" every SQL-layer error embeds),
/// and the verbatim message.
struct ErrorPayload {
  StatusCode code = StatusCode::kInternal;
  uint32_t line = 0;
  uint32_t col = 0;
  std::string message;
};
std::string EncodeError(const Status& st);
Result<ErrorPayload> DecodeError(const std::string& payload);
/// Rebuilds a Status from a wire (code, message) pair. An OK code inside
/// an ERROR frame is itself a protocol violation, reported as Internal.
Status MakeStatus(StatusCode code, std::string msg);
/// Scans an SQL error message for the trailing "line:col" position marker.
void ExtractLineCol(const std::string& message, uint32_t* line,
                    uint32_t* col);

/// Typed result-set encoding: enough structure crosses the wire for the
/// client to rebuild a real QueryResult (dense sides stay dense; columns
/// are rebuilt with their logical type), so rendering and value access on
/// the client are byte-identical to the in-process result.
std::string EncodeResultSet(const QueryResult& r);
Result<QueryResult> DecodeResultSet(const std::string& payload);

}  // namespace recycledb::net

#endif  // RECYCLEDB_NET_PROTOCOL_H_
