// Reproduces Figure 4: recycler effect with different types of query
// commonality. (a) Q11: intra-query commonality gives immediate, stable hit
// ratios and steady pool growth. (b) Q18: inter-query commonality makes the
// first instance expensive (it fills the pool) and every subsequent instance
// nearly free, with no new memory added.

#include "bench/bench_common.h"

using namespace recycledb;        // NOLINT
using namespace recycledb::bench; // NOLINT

namespace {

void Profile(Catalog* cat, int qnum, int instances) {
  auto q = tpch::BuildQuery(qnum);
  Rng rng(500 + qnum);

  std::printf("\nFigure 4 profile: Q%d, %d instances, KEEPALL/unlimited\n",
              qnum, instances);
  std::printf("%4s %9s %10s %11s %10s %11s\n", "#", "hit-ratio", "naive(ms)",
              "recycl(ms)", "RPmem(MB)", "reused(MB)");
  PrintRule(64);

  Interpreter naive(cat);
  Recycler rec;
  Interpreter interp(cat, &rec);

  // Warm-up instance (not reported), then empty the pool (§7 preparation).
  auto warm = q.gen_params(rng);
  MustRun(&naive, q.prog, warm);
  rec.Clear();

  for (int i = 1; i <= instances; ++i) {
    auto params = q.gen_params(rng);
    double t_naive = MustRun(&naive, q.prog, params).wall_ms;
    uint64_t mon0 = rec.stats().monitored;
    uint64_t hit0 = rec.stats().hits;
    double t_rec = MustRun(&interp, q.prog, params).wall_ms;
    uint64_t mon = rec.stats().monitored - mon0;
    uint64_t hit = rec.stats().hits - hit0;
    std::printf("%4d %9.2f %10.2f %11.2f %10.2f %11.2f\n", i,
                mon ? static_cast<double>(hit) / mon : 0.0, t_naive, t_rec,
                Mb(rec.pool().total_bytes()), Mb(rec.pool().ReusedBytes()));
  }
}

}  // namespace

int main() {
  auto cat = MakeTpchDb(EnvSf());
  Profile(cat.get(), 11, 10);  // Fig. 4a: intra-query
  Profile(cat.get(), 18, 10);  // Fig. 4b: inter-query
  std::printf(
      "\nShape check vs paper: Q11 shows immediate stable hit ratio and\n"
      "linear memory growth; Q18's first instance is slow with low hits,\n"
      "later instances are orders of magnitude faster with ~flat memory.\n");
  return 0;
}
