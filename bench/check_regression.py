#!/usr/bin/env python3
"""Benchmark-regression gate for bench_concurrent_throughput --json output.

Compares a fresh run against the checked-in baseline
(bench/baseline/BENCH_concurrent.json) and fails (exit 1) when any metric
regresses beyond tolerance:

  qps         relative: fail when current < baseline * (1 - tolerance)
  hit_ratio   absolute: fail when |current - baseline| > hit tolerance
  counters    relative: fail when outside baseline * (1 +/- counter
              tolerance); applies to the plan-cache counters (plan_*) and
              the DML pool-maintenance counters (propagated, invalidated,
              dml_commits)
  p99_us      relative upper bound: fail when current > max(baseline * (1 +
              latency tolerance), baseline + latency grace); advisory on
              config mismatch, like qps
              (p50_us is reported but not gated — log2 bucket edges make
              the median jumpy at microsecond scale)
  rel_qps     absolute: throughput relative to the same run's untraced
              phase (trace_ablation rows); machine-independent, so it
              stays binding even when absolute qps is advisory. The
              "always" row is report-only. kernel_* rows instead carry
              the vectorised-over-scalar-reference kernel ratio and are
              gated by a HARD floor (--kernel-rel-floor, default 1.3)
              rather than baseline-relative drift: the vectorised kernels
              must stay decisively faster than the retained scalar loops.
  encoded     bounded_memory/encoded row: within-run, binding. hit_ratio
              must be STRICTLY greater than raw_hit_ratio (the identical
              workload/budget without encodings — charging entries at
              encoded size must fit more working set), and
              encoding_savings_bytes must be positive (the encoding layer
              still produces compressed intermediates).
  rel_p99     lower bound: exclusive-lock reader p99 over snapshot reader
              p99 (mvcc_mixed snapshot row); within-run and
              machine-independent, so always binding. Fails below
              max(1.0, baseline * (1 - rel-p99 tolerance)) — snapshot
              reads must keep beating the exclusive-lock baseline.

Rows are keyed by (phase, load, workers) and the key sets must MATCH: a
baseline row missing from the current run fails (a phase silently stopped
running), and a current row missing from the baseline also fails (a new
phase landed without refreshing the baseline — refresh it so the phase is
actually gated instead of silently skipped). Improvements never fail, but a
qps gain beyond the tolerance prints a hint to refresh the baseline.

Usage:
  python3 bench/check_regression.py CURRENT.json bench/baseline/BENCH_concurrent.json
  python3 bench/check_regression.py CURRENT.json BASELINE.json --tolerance 0.25

Refreshing the baseline (same knobs CI uses):
  RDB_TPCH_SF=0.005 RDB_MAX_WORKERS=4 \\
      ./build/bench_concurrent_throughput --json bench/baseline/BENCH_concurrent.json
"""

import argparse
import json
import sys


def row_key(row):
    return (row["phase"], row.get("load", ""), row["workers"])


def load_results(path):
    with open(path) as f:
        doc = json.load(f)
    return doc.get("config", {}), {row_key(r): r for r in doc["results"]}


def main():
    p = argparse.ArgumentParser(description=__doc__,
                                formatter_class=argparse.RawDescriptionHelpFormatter)
    p.add_argument("current", help="JSON written by this run (--json)")
    p.add_argument("baseline", help="checked-in baseline JSON")
    p.add_argument("--tolerance", type=float, default=0.25,
                   help="relative qps tolerance (default 0.25 = +/-25%%)")
    p.add_argument("--hit-tolerance", type=float, default=0.15,
                   help="absolute hit-ratio tolerance (default 0.15)")
    p.add_argument("--counter-tolerance", type=float, default=0.5,
                   help="relative tolerance for plan-cache counters (default 0.5)")
    p.add_argument("--latency-tolerance", type=float, default=3.0,
                   help="relative p99_us upper-bound tolerance (default 3.0 "
                        "= 4x: log2 buckets quantise in exact 2x steps, so "
                        "the ceiling must clear two bucket steps of noise)")
    p.add_argument("--latency-grace-us", type=float, default=500.0,
                   help="absolute p99_us grace (default 500): the ceiling "
                        "is at least baseline + this, absorbing scheduler "
                        "preemption spikes on shared hosts")
    p.add_argument("--rel-tolerance", type=float, default=0.15,
                   help="absolute rel_qps tolerance (default 0.15)")
    p.add_argument("--kernel-rel-floor", type=float, default=1.3,
                   help="hard rel_qps floor for kernel_* rows (default 1.3): "
                        "vectorised kernels must beat the scalar reference "
                        "by at least this ratio")
    p.add_argument("--rel-p99-tolerance", type=float, default=0.5,
                   help="relative rel_p99 tolerance (default 0.5); the "
                        "floor never drops below 1.0")
    args = p.parse_args()

    cur_cfg, current = load_results(args.current)
    base_cfg, baseline = load_results(args.baseline)

    # qps is only comparable between like-configured runs on like hardware.
    # On mismatch (e.g. a baseline captured on a different runner class),
    # qps checks become advisory; the workload-determined metrics (hit
    # ratios, plan-cache counters) stay binding either way.
    qps_binding = True
    for knob in ("sf", "max_workers", "stripes", "hw_threads"):
        if cur_cfg.get(knob) != base_cfg.get(knob):
            print(f"WARNING: config mismatch on '{knob}' "
                  f"(current={cur_cfg.get(knob)}, baseline={base_cfg.get(knob)}); "
                  f"qps comparison downgraded to advisory — refresh the "
                  f"baseline from this environment's artifact.")
            qps_binding = False

    failures = []
    notes = []

    # Both directions must match: a phase dropping out of the current run is
    # a regression, and a phase absent from the baseline would otherwise run
    # completely ungated.
    for key in sorted(current.keys() - baseline.keys()):
        failures.append(
            f"{key[0]}/{key[1]}/workers={key[2]}: row missing from the "
            f"baseline — refresh bench/baseline/BENCH_concurrent.json so this "
            f"phase is gated")

    for key, base in sorted(baseline.items()):
        name = f"{key[0]}/{key[1]}/workers={key[2]}"
        cur = current.get(key)
        if cur is None:
            failures.append(f"{name}: row missing from current run")
            continue

        # qps: lower bound only (faster is fine, but hint at stale baselines).
        # Rows whose gate is a within-run ratio (kernel_* kernels, the
        # encoded bounded-memory ablation) keep qps advisory even on matched
        # configs: a single kernel's absolute rate swings with host jitter
        # far more than the service phases' thousands-of-queries windows,
        # and the ratio is what those rows exist to gate.
        within_run_gated = (key[0].startswith("kernel_")
                            or "raw_hit_ratio" in base)
        floor = base["qps"] * (1 - args.tolerance)
        status = "ok"
        if cur["qps"] < floor:
            msg = (f"{name}: qps {cur['qps']:.1f} < {floor:.1f} "
                   f"(baseline {base['qps']:.1f} - {args.tolerance:.0%})")
            if qps_binding and not within_run_gated:
                failures.append(msg)
                status = "FAIL"
            elif not qps_binding:
                notes.append(msg + " [advisory: config mismatch]")
            else:
                notes.append(msg + " [advisory: row gated by within-run "
                             "ratio]")
        elif cur["qps"] > base["qps"] * (1 + args.tolerance):
            notes.append(
                f"{name}: qps improved {base['qps']:.1f} -> {cur['qps']:.1f}; "
                f"consider refreshing the baseline")

        # Hit ratio: workload-determined, should be stable run to run.
        if abs(cur["hit_ratio"] - base["hit_ratio"]) > args.hit_tolerance:
            failures.append(
                f"{name}: hit_ratio {cur['hit_ratio']:.3f} vs baseline "
                f"{base['hit_ratio']:.3f} (> {args.hit_tolerance} apart)")
            status = "FAIL"

        # Workload-determined counters. Plan-cache counters (sql_plan_cache
        # rows): compiles exploding means the fingerprint normalisation or
        # cache sharing broke. DML counters (sql_dml_mixed rows): propagated
        # collapsing to zero means insert-only commits stopped taking the
        # §6.3 propagation path. Budget counter (bounded_memory rows):
        # evicted collapsing means the byte budget stopped binding. The
        # phase's `borrows` figure is reported in the JSON but NOT gated —
        # which stripe crosses its fair share first is scheduling-dependent,
        # unlike the workload-determined counters here.
        for counter in ("plan_compiles", "plan_hits", "plan_lookups",
                        "propagated", "invalidated", "dml_commits",
                        "evicted"):
            in_base, in_cur = counter in base, counter in cur
            if not in_base and not in_cur:
                continue
            # Presence must match in both directions, same as the row keys:
            # a counter the bench now emits but the baseline lacks would
            # otherwise run completely ungated.
            if in_base != in_cur:
                which = ("baseline" if in_cur else "current run")
                failures.append(
                    f"{name}: counter '{counter}' missing from the {which} — "
                    f"refresh the baseline so it is gated")
                status = "FAIL"
                continue
            lo = base[counter] * (1 - args.counter_tolerance)
            hi = base[counter] * (1 + args.counter_tolerance)
            if not (lo <= cur[counter] <= hi):
                failures.append(
                    f"{name}: {counter} {cur[counter]} outside "
                    f"[{lo:.0f}, {hi:.0f}] (baseline {base[counter]})")
                status = "FAIL"

        # p99 latency: upper bound only, hardware-dependent like qps. The
        # log2 buckets quantise to powers of two, so the default tolerance
        # is a full bucket step. The absolute grace floor absorbs scheduler
        # preemption spikes on shared hosts: a single descheduling adds
        # hundreds of microseconds to the tail regardless of the baseline,
        # which would otherwise flake every low-latency row.
        in_base, in_cur = "p99_us" in base, "p99_us" in cur
        if in_base != in_cur:
            which = "baseline" if in_cur else "current run"
            failures.append(
                f"{name}: 'p99_us' missing from the {which} — refresh the "
                f"baseline so latency is gated")
            status = "FAIL"
        elif in_base:
            ceil = max(base["p99_us"] * (1 + args.latency_tolerance),
                       base["p99_us"] + args.latency_grace_us)
            if cur["p99_us"] > ceil:
                msg = (f"{name}: p99_us {cur['p99_us']} > {ceil:.0f} "
                       f"(baseline {base['p99_us']} + "
                       f"{args.latency_tolerance:.0%})")
                if qps_binding:
                    failures.append(msg)
                    status = "FAIL"
                else:
                    notes.append(msg + " [advisory: config mismatch]")

        # rel_qps: a within-run ratio, binding regardless of hardware.
        # trace_ablation rows gate against baseline drift (always-on tracing
        # is report-only by design); kernel_* rows gate against a HARD floor
        # instead — ratios well above 1 are noisier than the near-1 tracing
        # ratios, but the vectorised kernel must never fall back to scalar
        # parity, whatever the baseline captured.
        in_base, in_cur = "rel_qps" in base, "rel_qps" in cur
        if in_base != in_cur:
            which = "baseline" if in_cur else "current run"
            failures.append(
                f"{name}: 'rel_qps' missing from the {which} — refresh the "
                f"baseline so tracing overhead is gated")
            status = "FAIL"
        elif in_base and key[0].startswith("kernel_"):
            if cur["rel_qps"] < args.kernel_rel_floor:
                failures.append(
                    f"{name}: rel_qps {cur['rel_qps']:.3f} < hard floor "
                    f"{args.kernel_rel_floor} (vectorised kernel no longer "
                    f"decisively beats the scalar reference)")
                status = "FAIL"
        elif in_base and key[1] != "always":
            if cur["rel_qps"] < base["rel_qps"] - args.rel_tolerance:
                failures.append(
                    f"{name}: rel_qps {cur['rel_qps']:.3f} < baseline "
                    f"{base['rel_qps']:.3f} - {args.rel_tolerance} "
                    f"(tracing overhead regressed)")
                status = "FAIL"

        # Encoded bounded-memory gates (bounded_memory/encoded row): both
        # within-run, so binding on any hardware. The hit-ratio win is the
        # point of recycling compressed intermediates — losing it means
        # encoded entries stopped being charged at encoded size (or stopped
        # being admitted); zero savings means the encoder no longer covers
        # the workload's intermediates.
        in_base, in_cur = "raw_hit_ratio" in base, "raw_hit_ratio" in cur
        if in_base != in_cur:
            which = "baseline" if in_cur else "current run"
            failures.append(
                f"{name}: 'raw_hit_ratio' missing from the {which} — refresh "
                f"the baseline so the encoded-recycling win is gated")
            status = "FAIL"
        elif in_cur:
            if cur["hit_ratio"] <= cur["raw_hit_ratio"]:
                failures.append(
                    f"{name}: encoded hit_ratio {cur['hit_ratio']:.3f} <= raw "
                    f"{cur['raw_hit_ratio']:.3f} under the same budget — "
                    f"encoded intermediates no longer stretch the pool")
                status = "FAIL"
            if cur.get("encoding_savings_bytes", 0) <= 0:
                failures.append(
                    f"{name}: encoding_savings_bytes is zero — no compressed "
                    f"intermediates reached the pool")
                status = "FAIL"

        # rel_p99 (mvcc_mixed snapshot row): exclusive-lock reader p99 over
        # snapshot reader p99 under identical writer churn — a within-run
        # ratio, binding regardless of hardware. Hard floor 1.0: snapshot
        # reads must never make the reader tail WORSE than the exclusive
        # lock; beyond that, the advantage may not collapse relative to the
        # baseline beyond the (generous — p99 ratios are noisy) tolerance.
        in_base, in_cur = "rel_p99" in base, "rel_p99" in cur
        if in_base != in_cur:
            which = "baseline" if in_cur else "current run"
            failures.append(
                f"{name}: 'rel_p99' missing from the {which} — refresh the "
                f"baseline so the MVCC reader-tail advantage is gated")
            status = "FAIL"
        elif in_base:
            floor = max(1.0, base["rel_p99"] * (1 - args.rel_p99_tolerance))
            if cur["rel_p99"] < floor:
                failures.append(
                    f"{name}: rel_p99 {cur['rel_p99']:.2f} < {floor:.2f} "
                    f"(baseline {base['rel_p99']:.2f}, floor "
                    f"max(1.0, baseline - {args.rel_p99_tolerance:.0%})) — "
                    f"MVCC reader-tail advantage regressed")
                status = "FAIL"

        print(f"  {status:4s} {name}: qps {cur['qps']:.1f} "
              f"(baseline {base['qps']:.1f}), hit_ratio {cur['hit_ratio']:.3f} "
              f"(baseline {base['hit_ratio']:.3f})")

    for n in notes:
        print(f"  note {n}")

    if failures:
        print(f"\n{len(failures)} regression(s):", file=sys.stderr)
        for f in failures:
            print(f"  {f}", file=sys.stderr)
        return 1
    print(f"\nno regressions against {args.baseline} "
          f"(qps tolerance +/-{args.tolerance:.0%})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
