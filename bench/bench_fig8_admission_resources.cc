// Reproduces Figure 8: effect of the admission policies on resource
// utilisation over the mixed 200-query workload (20 instances each of
// Q4,7,8,11,12,16,18,19,21,22): total RP memory (a), reused memory % (b),
// and reused RP entries % (c), for KEEPALL, CREDIT(k) and ADAPT(k).

#include "bench/bench_common.h"

using namespace recycledb;        // NOLINT
using namespace recycledb::bench; // NOLINT

namespace {

struct Totals {
  double mem_mb = 0;
  double reused_mem_pct = 0;
  double reused_entries_pct = 0;
};

Totals RunBatch(Catalog* cat, const MixedBatch& batch, AdmissionKind adm,
                int credits) {
  RecyclerConfig cfg;
  cfg.admission = adm;
  cfg.credits = credits;
  Recycler rec(cfg);
  Interpreter interp(cat, &rec);
  for (const auto& [t, params] : batch.queries) {
    MustRun(&interp, batch.templates[t].prog, params);
  }
  Totals out;
  out.mem_mb = Mb(rec.pool().total_bytes());
  size_t total = rec.pool().total_bytes();
  size_t entries = rec.pool().num_entries();
  out.reused_mem_pct = total ? 100.0 * rec.pool().ReusedBytes() / total : 0;
  out.reused_entries_pct =
      entries ? 100.0 * rec.pool().ReusedEntries() / entries : 0;
  return out;
}

}  // namespace

int main() {
  auto cat = MakeTpchDb(EnvSf());
  MixedBatch batch = MakeMixedBatch();

  Totals keepall = RunBatch(cat.get(), batch, AdmissionKind::kKeepAll, 0);
  std::printf(
      "Figure 8: admission policies, mixed 200-query batch\n"
      "%-9s %8s %12s %12s %12s\n",
      "policy", "credits", "mem(MB)", "reused-mem%%", "reused-ent%%");
  PrintRule(60);
  std::printf("%-9s %8s %12.2f %12.1f %12.1f\n", "KEEPALL", "-",
              keepall.mem_mb, keepall.reused_mem_pct,
              keepall.reused_entries_pct);
  for (int k = 3; k <= 10; k += 1) {
    Totals crd = RunBatch(cat.get(), batch, AdmissionKind::kCredit, k);
    Totals adp =
        RunBatch(cat.get(), batch, AdmissionKind::kAdaptiveCredit, k);
    std::printf("%-9s %8d %12.2f %12.1f %12.1f\n", "CREDIT", k, crd.mem_mb,
                crd.reused_mem_pct, crd.reused_entries_pct);
    std::printf("%-9s %8d %12.2f %12.1f %12.1f\n", "ADAPT", k, adp.mem_mb,
                adp.reused_mem_pct, adp.reused_entries_pct);
  }
  PrintRule(60);
  std::printf(
      "Shape check vs paper: ADAPT needs substantially less memory than\n"
      "KEEPALL while lifting the reused-memory percentage; CREDIT sits\n"
      "between them, converging towards KEEPALL as credits grow.\n");
  return 0;
}
