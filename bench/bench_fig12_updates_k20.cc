// Reproduces Figure 12: recycling in the presence of updates, K=20. The
// mixed query batch is interleaved with TPC-H refresh-style update blocks
// (one in the middle of every block of 20 queries). We track the recycle
// pool memory and entry count along the batch for KEEPALL/unlimited and two
// LRU-limited variants (the paper's 2.5 GB / 1 GB of a 5 GB footprint scale
// to 50% / 20% of our measured unlimited footprint).

#include "bench/bench_common.h"

using namespace recycledb;        // NOLINT
using namespace recycledb::bench; // NOLINT

namespace {

struct Track {
  std::vector<double> mem_mb;
  std::vector<size_t> entries;
  uint64_t invalidated = 0;
};

Track RunWithUpdates(double sf, const MixedBatch& batch, int k_queries,
                     size_t max_bytes, int sample_every) {
  // Fresh database per strategy: updates mutate the catalog.
  auto cat = MakeTpchDb(sf);
  RecyclerConfig cfg;
  cfg.max_bytes = max_bytes;
  Recycler rec(cfg);
  cat->SetUpdateListener(
      [&](const std::vector<ColumnId>& cols, Catalog::UpdateKind) {
    rec.OnCatalogUpdate(cols);
  });
  Interpreter interp(cat.get(), &rec);
  Rng urng(777);
  Track tr;
  int i = 0;
  for (const auto& [t, params] : batch.queries) {
    // One update block in the middle of each K-query block.
    if (k_queries > 0 && i % k_queries == k_queries / 2) {
      Status st = tpch::RunUpdateBlock(cat.get(), &urng);
      if (!st.ok()) {
        std::fprintf(stderr, "update failed: %s\n", st.ToString().c_str());
        std::abort();
      }
    }
    MustRun(&interp, batch.templates[t].prog, params);
    if (++i % sample_every == 0) {
      tr.mem_mb.push_back(Mb(rec.pool().total_bytes()));
      tr.entries.push_back(rec.pool().num_entries());
    }
  }
  tr.invalidated = rec.stats().invalidated;
  return tr;
}

void Print(const char* label, const Track& t) {
  std::printf("%-14s mem(MB):", label);
  for (double m : t.mem_mb) std::printf(" %6.1f", m);
  std::printf("\n%-14s entries:", label);
  for (size_t e : t.entries) std::printf(" %6zu", e);
  std::printf("\n%-14s invalidated entries: %llu\n\n", label,
              static_cast<unsigned long long>(t.invalidated));
}

}  // namespace

int main() {
  double sf = EnvSf();
  MixedBatch batch = MakeMixedBatch();

  // Measure the unlimited footprint once (without updates) for scaling.
  size_t footprint;
  {
    auto cat = MakeTpchDb(sf);
    Recycler rec;
    Interpreter interp(cat.get(), &rec);
    for (const auto& [t, params] : batch.queries)
      MustRun(&interp, batch.templates[t].prog, params);
    footprint = rec.pool().total_bytes();
  }

  std::printf(
      "Figure 12: recycling with updates, K=20 (one refresh block per 20\n"
      "queries); pool state sampled every 20 queries\n\n");
  Print("KEEPALL/unlim", RunWithUpdates(sf, batch, 20, 0, 20));
  Print("LRU/50%mem", RunWithUpdates(sf, batch, 20, footprint / 2, 20));
  Print("LRU/20%mem", RunWithUpdates(sf, batch, 20, footprint / 5, 20));
  std::printf(
      "Shape check vs paper: every update block invalidates the large\n"
      "orders/lineitem-derived part of the pool (sawtooth); entries from\n"
      "queries over part/supplier (Q11, Q16) survive; limited variants\n"
      "show smaller drops because eviction already trimmed the pool.\n");
  return 0;
}
