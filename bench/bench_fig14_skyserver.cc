// Reproduces Figure 14: total time of the SkyServer query batch under the
// naive strategy, the resource-limited recycler (CRD admission + LRU
// eviction, memory capped at 65% of the unlimited footprint, following the
// paper's 1 GB / 1.5 GB proportion), and KEEPALL/unlimited. Batches of
// 4x25, 2x50 and 1x100 queries, with the pool emptied between sub-batches
// to model update-driven resets; plus a longer confirmation batch.

#include "bench/bench_common.h"

using namespace recycledb;        // NOLINT
using namespace recycledb::bench; // NOLINT

namespace {

struct Workload {
  std::vector<std::pair<int, std::vector<Scalar>>> queries;  // kind, params
};

Workload MakeWorkload(int n, size_t objects, uint64_t seed) {
  skyserver::SkyConfig cfg;
  cfg.n_objects = objects;
  skyserver::SkyLogSampler sampler(cfg, seed);
  Workload w;
  for (int i = 0; i < n; ++i) {
    auto q = sampler.Next();
    w.queries.emplace_back(q.kind, q.params);
  }
  return w;
}

double RunBatches(Catalog* cat, const Workload& w, int n_batches,
                  Recycler* rec, const Program* progs[3]) {
  Interpreter interp(cat, rec);
  size_t per = w.queries.size() / n_batches;
  StopWatch sw;
  for (int b = 0; b < n_batches; ++b) {
    if (rec != nullptr) rec->Clear();  // batch boundary: pool reset
    for (size_t i = b * per; i < (b + 1) * per; ++i) {
      MustRun(&interp, *progs[w.queries[i].first], w.queries[i].second);
    }
  }
  return sw.ElapsedMillis();
}

}  // namespace

int main() {
  size_t objects = EnvSkyObjects();
  auto cat = MakeSkyDb(objects);
  Program cone = skyserver::BuildConeSearchTemplate();
  Program doc = skyserver::BuildDocQueryTemplate();
  Program point = skyserver::BuildPointQueryTemplate();
  const Program* progs[3] = {&cone, &doc, &point};

  Workload w100 = MakeWorkload(100, objects, 31);

  // Warm-up pass (naive) per §8 preparation.
  {
    Interpreter warm(cat.get());
    for (auto& [k, p] : w100.queries) MustRun(&warm, *progs[k], p);
  }

  // KEEPALL/unlimited footprint to scale the limited variant.
  size_t footprint;
  {
    Recycler rec;
    Interpreter interp(cat.get(), &rec);
    for (auto& [k, p] : w100.queries) MustRun(&interp, *progs[k], p);
    footprint = rec.pool().total_bytes();
  }

  std::printf("Figure 14: SkyServer batch times (ms); %zu objects\n",
              objects);
  std::printf("%-8s %10s %12s %16s\n", "batch", "Naive", "CRD/LRU-65%",
              "KeepAll/Unlim");
  PrintRule(52);
  for (int n_batches : {4, 2, 1}) {
    double naive = RunBatches(cat.get(), w100, n_batches, nullptr, progs);
    RecyclerConfig lim;
    lim.admission = AdmissionKind::kCredit;
    lim.credits = 5;
    lim.eviction = EvictionKind::kLru;
    lim.max_bytes = footprint * 65 / 100;
    Recycler rec_lim(lim);
    double limited = RunBatches(cat.get(), w100, n_batches, &rec_lim, progs);
    Recycler rec_ka;
    double keepall = RunBatches(cat.get(), w100, n_batches, &rec_ka, progs);
    std::printf("%dx%-5zu %10.1f %12.1f %16.1f\n", n_batches,
                w100.queries.size() / n_batches, naive, limited, keepall);
  }

  // Longer confirmation batch (paper: 500 queries).
  Workload w300 = MakeWorkload(300, objects, 77);
  double naive = RunBatches(cat.get(), w300, 1, nullptr, progs);
  Recycler rec_ka;
  double keepall = RunBatches(cat.get(), w300, 1, &rec_ka, progs);
  RecyclerConfig lim;
  lim.admission = AdmissionKind::kCredit;
  lim.credits = 5;
  lim.eviction = EvictionKind::kLru;
  lim.max_bytes = footprint * 65 / 100;
  Recycler rec_lim(lim);
  double limited = RunBatches(cat.get(), w300, 1, &rec_lim, progs);
  PrintRule(52);
  std::printf("%-8s %10.1f %12.1f %16.1f\n", "1x300", naive, limited, keepall);

  std::printf(
      "\nShape check vs paper: KEEPALL/unlimited achieves order(s) of\n"
      "magnitude speedup over naive (785s -> 14s in the paper); the\n"
      "memory-limited CRD/LRU variant lands at a fraction of naive time;\n"
      "shorter sub-batches pay a small re-population overhead.\n");
  return 0;
}
