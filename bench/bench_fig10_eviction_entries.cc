// Reproduces Figure 10: eviction policies under a limited number of
// recycle-pool entries ("cache lines"). The mixed 200-query batch first runs
// with KEEPALL/unlimited to measure total resource needs; then each policy
// runs with the entry budget limited to 80/60/40/20% of that total. We
// report cumulative hit ratio (relative to potential hits) along the batch
// and the total time relative to the naive strategy.

#include "bench/bench_common.h"

using namespace recycledb;        // NOLINT
using namespace recycledb::bench; // NOLINT

namespace {

struct Series {
  std::vector<double> hit_ratio_at;  // sampled every 25 queries
  double time_ms = 0;
};

Series RunLimited(Catalog* cat, const MixedBatch& batch, size_t max_entries,
                  EvictionKind ev, AdmissionKind adm) {
  RecyclerConfig cfg;
  cfg.admission = adm;
  cfg.credits = 5;
  cfg.eviction = ev;
  cfg.max_entries = max_entries;
  Recycler rec(cfg);
  Interpreter interp(cat, &rec);
  Series s;
  StopWatch sw;
  int i = 0;
  for (const auto& [t, params] : batch.queries) {
    MustRun(&interp, batch.templates[t].prog, params);
    if (++i % 25 == 0) {
      s.hit_ratio_at.push_back(
          rec.stats().monitored
              ? static_cast<double>(rec.stats().hits) / rec.stats().monitored
              : 0);
    }
  }
  s.time_ms = sw.ElapsedMillis();
  return s;
}

void PrintSeries(const char* label, const Series& s, double naive_ms) {
  std::printf("%-12s", label);
  for (double h : s.hit_ratio_at) std::printf(" %5.2f", h);
  std::printf(" | t/naive %.2f\n", s.time_ms / naive_ms);
}

}  // namespace

int main() {
  auto cat = MakeTpchDb(EnvSf());
  MixedBatch batch = MakeMixedBatch();

  // Naive baseline and KEEPALL/unlimited resource measurement.
  double naive_ms;
  {
    Interpreter naive(cat.get());
    for (size_t t = 0; t < batch.templates.size(); ++t)
      MustRun(&naive, batch.templates[t].prog, batch.queries[t].second);
    StopWatch sw;
    for (const auto& [t, params] : batch.queries)
      MustRun(&naive, batch.templates[t].prog, params);
    naive_ms = sw.ElapsedMillis();
  }
  Series unlimited = RunLimited(cat.get(), batch, 0, EvictionKind::kLru,
                                AdmissionKind::kKeepAll);
  size_t total_entries;
  {
    Recycler rec;
    Interpreter interp(cat.get(), &rec);
    for (const auto& [t, params] : batch.queries)
      MustRun(&interp, batch.templates[t].prog, params);
    total_entries = rec.pool().num_entries();
  }

  std::printf(
      "Figure 10: eviction under limited RP entries (total needed: %zu)\n"
      "cumulative hit ratio sampled every 25 of 200 queries\n\n",
      total_entries);
  PrintSeries("No limit", unlimited, naive_ms);
  for (int pct : {80, 60, 40, 20}) {
    size_t limit = total_entries * pct / 100;
    std::printf("\n-- %d%% cache lines (%zu entries) --\n", pct, limit);
    PrintSeries("LRU", RunLimited(cat.get(), batch, limit,
                                  EvictionKind::kLru, AdmissionKind::kKeepAll),
                naive_ms);
    PrintSeries("BP", RunLimited(cat.get(), batch, limit,
                                 EvictionKind::kBenefit,
                                 AdmissionKind::kKeepAll),
                naive_ms);
    PrintSeries("CRD+LRU", RunLimited(cat.get(), batch, limit,
                                      EvictionKind::kLru,
                                      AdmissionKind::kCredit),
                naive_ms);
    PrintSeries("CRD+BP", RunLimited(cat.get(), batch, limit,
                                     EvictionKind::kBenefit,
                                     AdmissionKind::kCredit),
                naive_ms);
  }
  std::printf(
      "\nShape check vs paper: limits >= 40%% barely affect the hit ratio;\n"
      "the 20%% limit drops it substantially while all policies stay well\n"
      "under the naive time; CRD improves LRU under severe limits.\n");
  return 0;
}
