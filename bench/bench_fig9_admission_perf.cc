// Reproduces Figure 9: effect of the admission policies on performance over
// the mixed 200-query batch: (a) hit ratio of CREDIT/ADAPT relative to
// KEEPALL, (b) absolute execution times.

#include "bench/bench_common.h"

using namespace recycledb;        // NOLINT
using namespace recycledb::bench; // NOLINT

namespace {

struct Perf {
  uint64_t hits = 0;
  double total_ms = 0;
};

Perf RunBatch(Catalog* cat, const MixedBatch& batch, AdmissionKind adm,
              int credits) {
  RecyclerConfig cfg;
  cfg.admission = adm;
  cfg.credits = credits;
  Recycler rec(cfg);
  Interpreter interp(cat, &rec);
  Perf p;
  StopWatch sw;
  for (const auto& [t, params] : batch.queries) {
    MustRun(&interp, batch.templates[t].prog, params);
  }
  p.total_ms = sw.ElapsedMillis();
  p.hits = rec.stats().hits;
  return p;
}

}  // namespace

int main() {
  auto cat = MakeTpchDb(EnvSf());
  MixedBatch batch = MakeMixedBatch();

  // Warm the persistent data once.
  {
    Interpreter warm(cat.get());
    for (size_t t = 0; t < batch.templates.size(); ++t) {
      MustRun(&warm, batch.templates[t].prog, batch.queries[t].second);
    }
  }

  Perf keepall = RunBatch(cat.get(), batch, AdmissionKind::kKeepAll, 0);
  std::printf("Figure 9: admission policies, performance (200 queries)\n");
  std::printf("%-9s %8s %10s %12s\n", "policy", "credits", "hit/KA",
              "time(ms)");
  PrintRule(44);
  std::printf("%-9s %8s %10.2f %12.1f\n", "KEEPALL", "-", 1.0,
              keepall.total_ms);
  for (int k = 3; k <= 10; ++k) {
    Perf crd = RunBatch(cat.get(), batch, AdmissionKind::kCredit, k);
    Perf adp = RunBatch(cat.get(), batch, AdmissionKind::kAdaptiveCredit, k);
    std::printf("%-9s %8d %10.2f %12.1f\n", "CREDIT", k,
                static_cast<double>(crd.hits) / keepall.hits, crd.total_ms);
    std::printf("%-9s %8d %10.2f %12.1f\n", "ADAPT", k,
                static_cast<double>(adp.hits) / keepall.hits, adp.total_ms);
  }
  PrintRule(44);
  std::printf(
      "Shape check vs paper: ADAPT reaches ~95%% of KEEPALL's hits at small\n"
      "credit budgets and avoids CREDIT's low-credit performance loss.\n");
  return 0;
}
