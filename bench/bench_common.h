#ifndef RECYCLEDB_BENCH_BENCH_COMMON_H_
#define RECYCLEDB_BENCH_BENCH_COMMON_H_

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "core/recycler.h"
#include "interp/interpreter.h"
#include "skyserver/skyserver.h"
#include "tpch/tpch.h"
#include "util/timer.h"

namespace recycledb::bench {

/// Scale factor for the TPC-H benches; override with RDB_TPCH_SF.
inline double EnvSf(double def = 0.01) {
  const char* v = std::getenv("RDB_TPCH_SF");
  if (v == nullptr) return def;
  return std::atof(v);
}

inline size_t EnvSkyObjects(size_t def = 120000) {
  const char* v = std::getenv("RDB_SKY_OBJECTS");
  if (v == nullptr) return def;
  return static_cast<size_t>(std::atoll(v));
}

inline std::unique_ptr<Catalog> MakeTpchDb(double sf) {
  auto cat = std::make_unique<Catalog>();
  tpch::TpchConfig cfg;
  cfg.scale_factor = sf;
  Status st = tpch::LoadTpch(cat.get(), cfg);
  if (!st.ok()) {
    std::fprintf(stderr, "tpch load failed: %s\n", st.ToString().c_str());
    std::abort();
  }
  return cat;
}

inline std::unique_ptr<Catalog> MakeSkyDb(size_t n_objects) {
  auto cat = std::make_unique<Catalog>();
  skyserver::SkyConfig cfg;
  cfg.n_objects = n_objects;
  Status st = skyserver::LoadSkyServer(cat.get(), cfg);
  if (!st.ok()) {
    std::fprintf(stderr, "skyserver load failed: %s\n", st.ToString().c_str());
    std::abort();
  }
  return cat;
}

/// Runs and aborts on error: benches assume valid templates.
inline RunStats MustRun(Interpreter* interp, const Program& prog,
                        const std::vector<Scalar>& params) {
  auto r = interp->Run(prog, params);
  if (!r.ok()) {
    std::fprintf(stderr, "query %s failed: %s\n", prog.name.c_str(),
                 r.status().ToString().c_str());
    std::abort();
  }
  return interp->last_run();
}

/// The experiment preparation of §7: run warm-up instances so persistent
/// columns are touched, then empty the recycle pool "to factor out the IO
/// costs and better illustrate the pure effect of the recycler".
inline void WarmUp(Interpreter* interp, const std::vector<Program*>& progs,
                   const std::vector<std::vector<Scalar>>& params) {
  for (size_t i = 0; i < progs.size(); ++i) {
    MustRun(interp, *progs[i], params[i]);
  }
}

/// The mixed workload of §7.2: 20 instances each of queries
/// 4,7,8,11,12,16,18,19,21,22, interleaved round-robin (200 queries).
struct MixedBatch {
  std::vector<tpch::QueryTemplate> templates;  // the 10 queries
  std::vector<std::pair<int, std::vector<Scalar>>> queries;  // (tmpl idx, params)
};

inline MixedBatch MakeMixedBatch(int instances_per_query = 20,
                                 uint64_t seed = 1234) {
  static const int kQueries[] = {4, 7, 8, 11, 12, 16, 18, 19, 21, 22};
  MixedBatch batch;
  for (int qn : kQueries) batch.templates.push_back(tpch::BuildQuery(qn));
  Rng rng(seed);
  for (int inst = 0; inst < instances_per_query; ++inst) {
    for (size_t t = 0; t < batch.templates.size(); ++t) {
      batch.queries.emplace_back(static_cast<int>(t),
                                 batch.templates[t].gen_params(rng));
    }
  }
  return batch;
}

inline double Mb(size_t bytes) {
  return static_cast<double>(bytes) / (1024.0 * 1024.0);
}

inline void PrintRule(int width = 78) {
  for (int i = 0; i < width; ++i) std::putchar('-');
  std::putchar('\n');
}

}  // namespace recycledb::bench

#endif  // RECYCLEDB_BENCH_BENCH_COMMON_H_
