// Reproduces Figure 11: eviction policies under a limited recycle-pool
// *memory* budget (80/60/40/20% of the KEEPALL/unlimited footprint), mixed
// 200-query batch. Memory limits bite harder than entry limits because the
// beneficial intermediates are also the large ones (paper §7.3).

#include "bench/bench_common.h"

using namespace recycledb;        // NOLINT
using namespace recycledb::bench; // NOLINT

namespace {

struct Series {
  std::vector<double> hit_ratio_at;
  double time_ms = 0;
};

Series RunLimited(Catalog* cat, const MixedBatch& batch, size_t max_bytes,
                  EvictionKind ev, AdmissionKind adm) {
  RecyclerConfig cfg;
  cfg.admission = adm;
  cfg.credits = 5;
  cfg.eviction = ev;
  cfg.max_bytes = max_bytes;
  Recycler rec(cfg);
  Interpreter interp(cat, &rec);
  Series s;
  StopWatch sw;
  int i = 0;
  for (const auto& [t, params] : batch.queries) {
    MustRun(&interp, batch.templates[t].prog, params);
    if (++i % 25 == 0) {
      s.hit_ratio_at.push_back(
          rec.stats().monitored
              ? static_cast<double>(rec.stats().hits) / rec.stats().monitored
              : 0);
    }
  }
  s.time_ms = sw.ElapsedMillis();
  return s;
}

void PrintSeries(const char* label, const Series& s, double naive_ms) {
  std::printf("%-12s", label);
  for (double h : s.hit_ratio_at) std::printf(" %5.2f", h);
  std::printf(" | t/naive %.2f\n", s.time_ms / naive_ms);
}

}  // namespace

int main() {
  auto cat = MakeTpchDb(EnvSf());
  MixedBatch batch = MakeMixedBatch();

  double naive_ms;
  {
    Interpreter naive(cat.get());
    for (size_t t = 0; t < batch.templates.size(); ++t)
      MustRun(&naive, batch.templates[t].prog, batch.queries[t].second);
    StopWatch sw;
    for (const auto& [t, params] : batch.queries)
      MustRun(&naive, batch.templates[t].prog, params);
    naive_ms = sw.ElapsedMillis();
  }
  size_t total_bytes;
  Series unlimited;
  {
    Recycler rec;
    Interpreter interp(cat.get(), &rec);
    StopWatch sw;
    int i = 0;
    for (const auto& [t, params] : batch.queries) {
      MustRun(&interp, batch.templates[t].prog, params);
      if (++i % 25 == 0)
        unlimited.hit_ratio_at.push_back(
            static_cast<double>(rec.stats().hits) / rec.stats().monitored);
    }
    unlimited.time_ms = sw.ElapsedMillis();
    total_bytes = rec.pool().total_bytes();
  }

  std::printf(
      "Figure 11: eviction under limited RP memory (total: %.2f MB)\n"
      "cumulative hit ratio sampled every 25 of 200 queries\n\n",
      Mb(total_bytes));
  PrintSeries("No limit", unlimited, naive_ms);
  for (int pct : {80, 60, 40, 20}) {
    size_t limit = total_bytes * pct / 100;
    std::printf("\n-- %d%% memory (%.2f MB) --\n", pct, Mb(limit));
    PrintSeries("LRU", RunLimited(cat.get(), batch, limit,
                                  EvictionKind::kLru, AdmissionKind::kKeepAll),
                naive_ms);
    PrintSeries("BP", RunLimited(cat.get(), batch, limit,
                                 EvictionKind::kBenefit,
                                 AdmissionKind::kKeepAll),
                naive_ms);
    PrintSeries("HP", RunLimited(cat.get(), batch, limit,
                                 EvictionKind::kHistory,
                                 AdmissionKind::kKeepAll),
                naive_ms);
    PrintSeries("CRD+LRU", RunLimited(cat.get(), batch, limit,
                                      EvictionKind::kLru,
                                      AdmissionKind::kCredit),
                naive_ms);
    PrintSeries("CRD+BP", RunLimited(cat.get(), batch, limit,
                                     EvictionKind::kBenefit,
                                     AdmissionKind::kCredit),
                naive_ms);
  }
  std::printf(
      "\nShape check vs paper: memory limits degrade hits/time more than\n"
      "entry limits; HP tracks BP closely; simple LRU (and CRD+LRU) is\n"
      "competitive under severe memory pressure.\n");
  return 0;
}
