// Ablations of the design choices DESIGN.md calls out:
//  1. subsumption on/off (singleton + combined) on an overlap-heavy workload
//  2. current-query protection on/off under a tight memory budget
//  3. update handling: immediate invalidation (§6.4) vs insert
//     propagation (§6.3) on a read-mostly workload with small inserts

#include "bench/bench_common.h"
#include "util/check.h"

using namespace recycledb;        // NOLINT
using namespace recycledb::bench; // NOLINT

namespace {

void AblateSubsumption(size_t objects) {
  auto cat = MakeSkyDb(objects);
  Program scan = skyserver::BuildRaSelectTemplate();
  auto queries = skyserver::GenerateSubsumptionBench(3, 12, 0.02, 99);

  std::printf("\n[1] subsumption ablation (B3-style workload, 48 queries)\n");
  {
    // Warm the persistent columns so the three modes compare fairly.
    Interpreter warm(cat.get());
    for (const auto& q : queries) MustRun(&warm, scan, q.params);
  }
  for (int mode = 0; mode < 3; ++mode) {
    RecyclerConfig cfg;
    cfg.enable_subsumption = mode >= 1;
    cfg.enable_combined_subsumption = mode == 2;
    Recycler rec(cfg);
    Interpreter interp(cat.get(), &rec);
    StopWatch sw;
    for (const auto& q : queries) MustRun(&interp, scan, q.params);
    std::printf(
        "  %-28s time %7.1f ms  exact=%llu singleton=%llu combined=%llu\n",
        mode == 0 ? "no subsumption"
                  : (mode == 1 ? "singleton only" : "singleton+combined"),
        sw.ElapsedMillis(),
        static_cast<unsigned long long>(rec.stats().exact_hits),
        static_cast<unsigned long long>(rec.stats().subsumed_hits),
        static_cast<unsigned long long>(rec.stats().combined_hits));
  }
}

void AblateProtection(double sf) {
  auto cat = MakeTpchDb(sf);
  MixedBatch batch = MakeMixedBatch(/*instances=*/8);
  // Footprint for the limit.
  size_t footprint;
  {
    Recycler rec;
    Interpreter interp(cat.get(), &rec);
    for (const auto& [t, p] : batch.queries)
      MustRun(&interp, batch.templates[t].prog, p);
    footprint = rec.pool().total_bytes();
  }
  std::printf("\n[2] current-query protection ablation (30%% memory)\n");
  for (bool protect : {true, false}) {
    RecyclerConfig cfg;
    cfg.max_bytes = footprint * 3 / 10;
    cfg.protect_current_query = protect;
    Recycler rec(cfg);
    Interpreter interp(cat.get(), &rec);
    StopWatch sw;
    for (const auto& [t, p] : batch.queries)
      MustRun(&interp, batch.templates[t].prog, p);
    std::printf("  protect=%-5s time %8.1f ms  hits=%llu evicted=%llu\n",
                protect ? "on" : "off", sw.ElapsedMillis(),
                static_cast<unsigned long long>(rec.stats().hits),
                static_cast<unsigned long long>(rec.stats().evicted));
  }
}

void AblateUpdateHandling(double sf) {
  std::printf("\n[3] update handling: invalidation (§6.4) vs insert "
              "propagation (§6.3)\n");
  for (bool propagate : {false, true}) {
    auto cat = MakeTpchDb(sf);
    Recycler rec;
    Catalog* cat_raw = cat.get();
    Recycler* rec_raw = &rec;
    cat->SetUpdateListener(
        [cat_raw, rec_raw, propagate](const std::vector<ColumnId>& cols,
                                      Catalog::UpdateKind) {
          if (propagate)
            rec_raw->PropagateUpdate(cat_raw, cols);
          else
            rec_raw->OnCatalogUpdate(cols);
        });
    Interpreter interp(cat.get(), &rec);
    auto q1 = tpch::BuildQuery(1);
    Rng rng(8);
    Rng urng(9);
    StopWatch sw;
    // Read-mostly loop: repeated Q1 instances with identical params,
    // interrupted by small insert-only appends.
    auto params = q1.gen_params(rng);
    for (int i = 0; i < 12; ++i) {
      MustRun(&interp, q1.prog, params);
      if (i % 3 == 2) {
        // insert-only micro-commit into lineitem/orders
        TxnWriteSet ws = cat->BeginWrite();
        Status st = cat->Append(
            &ws,
            "orders", {{Scalar::OidVal(1000000 + i), Scalar::OidVal(0),
                        Scalar::Str("O"), Scalar::Dbl(1.0),
                        Scalar::DateVal(DateFromYmd(1996, 1, 1)),
                        Scalar::Str("3-MEDIUM"), Scalar::Str("x")}});
        RDB_CHECK(st.ok());
        st = cat->Append(
            &ws, "lineitem",
            {{Scalar::OidVal(1000000 + i), Scalar::OidVal(0), Scalar::OidVal(0),
              Scalar::Int(1), Scalar::Int(5), Scalar::Dbl(10.0),
              Scalar::Dbl(0.05), Scalar::Dbl(0.02), Scalar::Str("N"),
              Scalar::Str("O"), Scalar::DateVal(DateFromYmd(1996, 2, 1)),
              Scalar::DateVal(DateFromYmd(1996, 2, 10)),
              Scalar::DateVal(DateFromYmd(1996, 2, 20)), Scalar::Str("NONE"),
              Scalar::Str("MAIL")}});
        RDB_CHECK(st.ok());
        RDB_CHECK(cat->CommitWrite(&ws).ok());
      }
    }
    std::printf(
        "  %-14s time %8.1f ms  hits=%llu invalidated=%llu propagated=%llu\n",
        propagate ? "propagation" : "invalidation", sw.ElapsedMillis(),
        static_cast<unsigned long long>(rec.stats().hits),
        static_cast<unsigned long long>(rec.stats().invalidated),
        static_cast<unsigned long long>(rec.stats().propagated));
  }
}

}  // namespace

int main() {
  std::printf("Design-choice ablations\n");
  AblateSubsumption(EnvSkyObjects(60000));
  AblateProtection(EnvSf());
  AblateUpdateHandling(EnvSf());
  std::printf(
      "\nExpected: subsumption adds hits & cuts time on overlapping ranges;\n"
      "protection avoids evicting the running query's lineage; propagation\n"
      "retains select intermediates across insert-only commits (hits stay\n"
      "up vs invalidation).\n");
  return 0;
}
