// Reproduces Figure 13: recycling under a highly volatile database — an
// update block after *every* query (K=1). The recycle pool content churns
// continuously: intermediates added by one query are thrown out before the
// next can reuse them, and the system degenerates to naive performance plus
// a negligible management overhead (paper §7.4).

#include "bench/bench_common.h"

using namespace recycledb;        // NOLINT
using namespace recycledb::bench; // NOLINT

int main() {
  double sf = EnvSf();
  MixedBatch batch = MakeMixedBatch(/*instances_per_query=*/6);  // 60 queries

  struct Strategy {
    const char* name;
    size_t max_bytes_pct;  // 0 = unlimited
  };

  // Unlimited footprint (no updates) for scaling the limits.
  size_t footprint;
  {
    auto cat = MakeTpchDb(sf);
    Recycler rec;
    Interpreter interp(cat.get(), &rec);
    for (const auto& [t, params] : batch.queries)
      MustRun(&interp, batch.templates[t].prog, params);
    footprint = rec.pool().total_bytes();
  }

  std::printf(
      "Figure 13: recycling with updates, K=1 (an update block after every\n"
      "query); pool state sampled every 6 queries, 60-query batch\n\n");

  for (Strategy s : {Strategy{"KEEPALL/unlim", 0}, Strategy{"LRU/50%mem", 50},
                     Strategy{"LRU/20%mem", 20}}) {
    auto cat = MakeTpchDb(sf);
    RecyclerConfig cfg;
    cfg.max_bytes = s.max_bytes_pct ? footprint * s.max_bytes_pct / 100 : 0;
    Recycler rec(cfg);
    cat->SetUpdateListener(
        [&](const std::vector<ColumnId>& cols, Catalog::UpdateKind) {
      rec.OnCatalogUpdate(cols);
    });
    Interpreter interp(cat.get(), &rec);
    Rng urng(991);

    std::vector<double> mem;
    std::vector<size_t> entries;
    int i = 0;
    StopWatch sw;
    for (const auto& [t, params] : batch.queries) {
      MustRun(&interp, batch.templates[t].prog, params);
      Status st = tpch::RunUpdateBlock(cat.get(), &urng, /*orders=*/4);
      if (!st.ok()) std::abort();
      if (++i % 6 == 0) {
        mem.push_back(Mb(rec.pool().total_bytes()));
        entries.push_back(rec.pool().num_entries());
      }
    }
    double total = sw.ElapsedMillis();
    std::printf("%-14s mem(MB):", s.name);
    for (double m : mem) std::printf(" %6.1f", m);
    std::printf("\n%-14s entries:", s.name);
    for (size_t e : entries) std::printf(" %6zu", e);
    std::printf("\n%-14s hits=%llu invalidated=%llu total=%.0fms\n\n", s.name,
                static_cast<unsigned long long>(rec.stats().hits),
                static_cast<unsigned long long>(rec.stats().invalidated),
                total);
  }
  std::printf(
      "Shape check vs paper: continuous alternation — intermediates added\n"
      "by a query are immediately invalidated by the following update\n"
      "block; hits collapse to the few queries untouched by the updates,\n"
      "i.e. the system falls back to vanilla performance.\n");
  return 0;
}
