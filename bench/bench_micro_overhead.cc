// Micro-benchmarks for the §3.3 claim that run-time matching adds
// negligible overhead (< 1 microsecond per interpreted instruction in the
// paper's setting). Uses google-benchmark.

#include <benchmark/benchmark.h>

#include "bat/hash_index.h"
#include "bench/bench_common.h"
#include "core/concurrent_recycler.h"
#include "core/recycler_optimizer.h"
#include "engine/operators.h"
#include "engine/scalar_ref.h"
#include "engine/vec/hashprobe.h"
#include "mal/plan_builder.h"
#include "obs/trace.h"
#include "util/check.h"

namespace {

using namespace recycledb;        // NOLINT
using namespace recycledb::bench; // NOLINT

std::unique_ptr<Catalog> MicroDb() {
  auto cat = std::make_unique<Catalog>();
  cat->CreateTable("t", {{"k", TypeTag::kOid}, {"v", TypeTag::kInt}});
  std::vector<Oid> keys(10000);
  std::vector<int32_t> vals(10000);
  Rng rng(3);
  for (size_t i = 0; i < keys.size(); ++i) {
    keys[i] = i;
    vals[i] = static_cast<int32_t>(rng.UniformRange(0, 1000));
  }
  RDB_CHECK(cat->LoadColumn<Oid>("t", "k", std::move(keys), true, true).ok());
  RDB_CHECK(cat->LoadColumn<int32_t>("t", "v", std::move(vals)).ok());
  return cat;
}

Program MicroTemplate() {
  PlanBuilder b("micro");
  int lo = b.Param("A0");
  int hi = b.Param("A1");
  int v = b.Bind("t", "v");
  int sel = b.Select(v, lo, hi, true, true);
  int cnt = b.AggrCount(sel);
  b.ExportValue(cnt, "n");
  Program p = b.Build();
  MarkForRecycling(&p);
  return p;
}

/// Warm-pool exact-match lookups: the recycleEntry() fast path.
void BM_MatchHit(benchmark::State& state) {
  auto cat = MicroDb();
  Recycler rec;
  Interpreter interp(cat.get(), &rec);
  Program p = MicroTemplate();
  std::vector<Scalar> params{Scalar::Int(10), Scalar::Int(500)};
  MustRun(&interp, p, params);  // fill the pool
  double match0 = rec.stats().match_ms;
  uint64_t mon0 = rec.stats().monitored;
  for (auto _ : state) {
    MustRun(&interp, p, params);
  }
  double per_instr_us = (rec.stats().match_ms - match0) * 1000.0 /
                        static_cast<double>(rec.stats().monitored - mon0);
  state.counters["match_us_per_instr"] = per_instr_us;
}
BENCHMARK(BM_MatchHit);

/// Match misses with admission: recycleEntry + recycleExit slow path.
void BM_MatchMissAndAdmit(benchmark::State& state) {
  auto cat = MicroDb();
  Recycler rec;
  Interpreter interp(cat.get(), &rec);
  Program p = MicroTemplate();
  int i = 0;
  for (auto _ : state) {
    // Distinct ranges: never hits, always admits.
    std::vector<Scalar> params{Scalar::Int(i % 400), Scalar::Int(i % 400 + 7)};
    MustRun(&interp, p, params);
    ++i;
  }
  state.counters["pool_entries"] =
      static_cast<double>(rec.pool().num_entries());
}
BENCHMARK(BM_MatchMissAndAdmit);

/// Baseline: the interpreter without any recycler attached.
void BM_NoRecycler(benchmark::State& state) {
  auto cat = MicroDb();
  Interpreter interp(cat.get());
  Program p = MicroTemplate();
  std::vector<Scalar> params{Scalar::Int(10), Scalar::Int(500)};
  for (auto _ : state) {
    MustRun(&interp, p, params);
  }
}
BENCHMARK(BM_NoRecycler);

/// Tracing ablation at the ConcurrentRecycler::Session level, on the
/// warm-hit fast path — the case the trace branch must not slow down.
/// `sample_n` = 0 runs untraced (one null-pointer branch per monitored
/// instruction), 64 attaches a trace to every 64th run, 1 to every run.
/// BM_SessionTrace/0 vs /1 is the per-hit cost of decision capture;
/// /0 vs BM_MatchHit is the striping overhead, tracing aside.
void BM_SessionTrace(benchmark::State& state) {
  const int sample_n = static_cast<int>(state.range(0));
  auto cat = MicroDb();
  ConcurrentRecycler rec(RecyclerConfig{});
  auto session = rec.NewSession();
  Interpreter interp(cat.get(), session.get());
  Program p = MicroTemplate();
  std::vector<Scalar> params{Scalar::Int(10), Scalar::Int(500)};
  MustRun(&interp, p, params);  // fill the pool
  int i = 0;
  for (auto _ : state) {
    std::unique_ptr<obs::QueryTrace> trace;
    if (sample_n > 0 && i % sample_n == 0) {
      trace = std::make_unique<obs::QueryTrace>("micro", sample_n > 1);
      session->set_trace(trace.get());
    }
    MustRun(&interp, p, params);
    if (trace != nullptr) session->set_trace(nullptr);
    ++i;
  }
  state.counters["hits"] = static_cast<double>(rec.stats().hits);
}
BENCHMARK(BM_SessionTrace)->Arg(0)->Arg(64)->Arg(1);

// ---------------------------------------------------------------------------
// Vectorised kernels against the retained scalar reference loops
// (engine/scalar_ref.h), on the same scalar-adverse shapes the
// bench_concurrent_throughput kernel_* phases gate: random unsorted data
// (branches mispredict), nils in-band. Run with --benchmark_filter=Kernel
// to compare the pairs; the gated ratio lives in the throughput bench.
// ---------------------------------------------------------------------------

BatPtr KernelSelectInput() {
  const size_t n = 1u << 18;
  Rng rng(11001);
  std::vector<int32_t> vals(n);
  for (size_t i = 0; i < n; ++i) {
    vals[i] = rng.Uniform(64) == 0 ? NilOf<int32_t>()
                                   : static_cast<int32_t>(rng.Uniform(1000));
  }
  return Bat::DenseHead(Column::Make<int32_t>(TypeTag::kInt, std::move(vals)));
}

void BM_KernelSelectVec(benchmark::State& state) {
  BatPtr b = KernelSelectInput();
  for (auto _ : state) {
    auto r = engine::Select(b, Scalar::Int(100), Scalar::Int(299), true, true);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_KernelSelectVec);

void BM_KernelSelectScalar(benchmark::State& state) {
  BatPtr b = KernelSelectInput();
  for (auto _ : state) {
    auto r = engine::scalar_ref::ScanRangeSelect(b, Scalar::Int(100),
                                                 Scalar::Int(299), true, true);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_KernelSelectScalar);

struct KernelProbeInput {
  std::vector<int64_t> rkeys;
  std::vector<int64_t> probes;
};

KernelProbeInput MakeKernelProbeInput() {
  KernelProbeInput in;
  const size_t rn = 1u << 16;
  const size_t ln = 1u << 18;
  Rng rng(11002);
  in.rkeys.resize(rn);
  for (size_t i = 0; i < rn; ++i) in.rkeys[i] = static_cast<int64_t>(i);
  for (size_t i = rn - 1; i > 0; --i) {
    std::swap(in.rkeys[i], in.rkeys[rng.Uniform(i + 1)]);
  }
  in.probes.resize(ln);
  for (size_t i = 0; i < ln; ++i) {
    in.probes[i] = static_cast<int64_t>(rng.Uniform(4 * rn));
  }
  return in;
}

void BM_KernelJoinProbeVec(benchmark::State& state) {
  KernelProbeInput in = MakeKernelProbeInput();
  HashIndexT<int64_t> index(in.rkeys.data(), in.rkeys.size());
  std::vector<uint32_t> sel(in.probes.size()), pos(in.probes.size());
  for (auto _ : state) {
    size_t o = engine::vec::BatchProbeUnique(
        index, in.probes.data(), in.probes.size(), sel.data(), pos.data());
    benchmark::DoNotOptimize(o);
  }
}
BENCHMARK(BM_KernelJoinProbeVec);

void BM_KernelJoinProbeScalar(benchmark::State& state) {
  KernelProbeInput in = MakeKernelProbeInput();
  HashIndexT<int64_t> index(in.rkeys.data(), in.rkeys.size());
  std::vector<uint32_t> sel, pos;
  for (auto _ : state) {
    sel.clear();
    pos.clear();
    for (size_t i = 0; i < in.probes.size(); ++i) {
      index.ForEachMatch(in.probes[i], [&](uint32_t p) {
        sel.push_back(static_cast<uint32_t>(i));
        pos.push_back(p);
      });
    }
    benchmark::DoNotOptimize(sel.data());
  }
}
BENCHMARK(BM_KernelJoinProbeScalar);

struct KernelGroupInput {
  BatPtr vals;
  BatPtr map;
};

KernelGroupInput MakeKernelGroupInput() {
  const size_t n = 1u << 18;
  const size_t ngroups = 64;
  Rng rng(11003);
  std::vector<int64_t> vals(n);
  std::vector<Oid> gids(n);
  for (size_t i = 0; i < n; ++i) {
    vals[i] = rng.Uniform(10) < 3 ? NilOf<int64_t>()
                                  : static_cast<int64_t>(rng.Uniform(1000));
    gids[i] = rng.Uniform(ngroups);
  }
  KernelGroupInput in;
  in.vals =
      Bat::DenseHead(Column::Make<int64_t>(TypeTag::kLng, std::move(vals)));
  in.map = Bat::DenseHead(Column::Make<Oid>(TypeTag::kOid, std::move(gids)));
  return in;
}

void BM_KernelGroupAggVec(benchmark::State& state) {
  KernelGroupInput in = MakeKernelGroupInput();
  for (auto _ : state) {
    auto r = engine::GroupedAggr(engine::AggFn::kSum, in.vals, in.map, 64);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_KernelGroupAggVec);

void BM_KernelGroupAggScalar(benchmark::State& state) {
  KernelGroupInput in = MakeKernelGroupInput();
  for (auto _ : state) {
    auto r = engine::scalar_ref::GroupedAggr(engine::AggFn::kSum, in.vals,
                                             in.map, 64);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_KernelGroupAggScalar);

}  // namespace

BENCHMARK_MAIN();
