// Micro-benchmarks for the §3.3 claim that run-time matching adds
// negligible overhead (< 1 microsecond per interpreted instruction in the
// paper's setting). Uses google-benchmark.

#include <benchmark/benchmark.h>

#include "bench/bench_common.h"
#include "core/concurrent_recycler.h"
#include "core/recycler_optimizer.h"
#include "mal/plan_builder.h"
#include "obs/trace.h"
#include "util/check.h"

namespace {

using namespace recycledb;        // NOLINT
using namespace recycledb::bench; // NOLINT

std::unique_ptr<Catalog> MicroDb() {
  auto cat = std::make_unique<Catalog>();
  cat->CreateTable("t", {{"k", TypeTag::kOid}, {"v", TypeTag::kInt}});
  std::vector<Oid> keys(10000);
  std::vector<int32_t> vals(10000);
  Rng rng(3);
  for (size_t i = 0; i < keys.size(); ++i) {
    keys[i] = i;
    vals[i] = static_cast<int32_t>(rng.UniformRange(0, 1000));
  }
  RDB_CHECK(cat->LoadColumn<Oid>("t", "k", std::move(keys), true, true).ok());
  RDB_CHECK(cat->LoadColumn<int32_t>("t", "v", std::move(vals)).ok());
  return cat;
}

Program MicroTemplate() {
  PlanBuilder b("micro");
  int lo = b.Param("A0");
  int hi = b.Param("A1");
  int v = b.Bind("t", "v");
  int sel = b.Select(v, lo, hi, true, true);
  int cnt = b.AggrCount(sel);
  b.ExportValue(cnt, "n");
  Program p = b.Build();
  MarkForRecycling(&p);
  return p;
}

/// Warm-pool exact-match lookups: the recycleEntry() fast path.
void BM_MatchHit(benchmark::State& state) {
  auto cat = MicroDb();
  Recycler rec;
  Interpreter interp(cat.get(), &rec);
  Program p = MicroTemplate();
  std::vector<Scalar> params{Scalar::Int(10), Scalar::Int(500)};
  MustRun(&interp, p, params);  // fill the pool
  double match0 = rec.stats().match_ms;
  uint64_t mon0 = rec.stats().monitored;
  for (auto _ : state) {
    MustRun(&interp, p, params);
  }
  double per_instr_us = (rec.stats().match_ms - match0) * 1000.0 /
                        static_cast<double>(rec.stats().monitored - mon0);
  state.counters["match_us_per_instr"] = per_instr_us;
}
BENCHMARK(BM_MatchHit);

/// Match misses with admission: recycleEntry + recycleExit slow path.
void BM_MatchMissAndAdmit(benchmark::State& state) {
  auto cat = MicroDb();
  Recycler rec;
  Interpreter interp(cat.get(), &rec);
  Program p = MicroTemplate();
  int i = 0;
  for (auto _ : state) {
    // Distinct ranges: never hits, always admits.
    std::vector<Scalar> params{Scalar::Int(i % 400), Scalar::Int(i % 400 + 7)};
    MustRun(&interp, p, params);
    ++i;
  }
  state.counters["pool_entries"] =
      static_cast<double>(rec.pool().num_entries());
}
BENCHMARK(BM_MatchMissAndAdmit);

/// Baseline: the interpreter without any recycler attached.
void BM_NoRecycler(benchmark::State& state) {
  auto cat = MicroDb();
  Interpreter interp(cat.get());
  Program p = MicroTemplate();
  std::vector<Scalar> params{Scalar::Int(10), Scalar::Int(500)};
  for (auto _ : state) {
    MustRun(&interp, p, params);
  }
}
BENCHMARK(BM_NoRecycler);

/// Tracing ablation at the ConcurrentRecycler::Session level, on the
/// warm-hit fast path — the case the trace branch must not slow down.
/// `sample_n` = 0 runs untraced (one null-pointer branch per monitored
/// instruction), 64 attaches a trace to every 64th run, 1 to every run.
/// BM_SessionTrace/0 vs /1 is the per-hit cost of decision capture;
/// /0 vs BM_MatchHit is the striping overhead, tracing aside.
void BM_SessionTrace(benchmark::State& state) {
  const int sample_n = static_cast<int>(state.range(0));
  auto cat = MicroDb();
  ConcurrentRecycler rec(RecyclerConfig{});
  auto session = rec.NewSession();
  Interpreter interp(cat.get(), session.get());
  Program p = MicroTemplate();
  std::vector<Scalar> params{Scalar::Int(10), Scalar::Int(500)};
  MustRun(&interp, p, params);  // fill the pool
  int i = 0;
  for (auto _ : state) {
    std::unique_ptr<obs::QueryTrace> trace;
    if (sample_n > 0 && i % sample_n == 0) {
      trace = std::make_unique<obs::QueryTrace>("micro", sample_n > 1);
      session->set_trace(trace.get());
    }
    MustRun(&interp, p, params);
    if (trace != nullptr) session->set_trace(nullptr);
    ++i;
  }
  state.counters["hits"] = static_cast<double>(rec.stats().hits);
}
BENCHMARK(BM_SessionTrace)->Arg(0)->Arg(64)->Arg(1);

}  // namespace

BENCHMARK_MAIN();
