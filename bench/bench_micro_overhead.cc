// Micro-benchmarks for the §3.3 claim that run-time matching adds
// negligible overhead (< 1 microsecond per interpreted instruction in the
// paper's setting). Uses google-benchmark.

#include <benchmark/benchmark.h>

#include "bench/bench_common.h"
#include "util/check.h"
#include "core/recycler_optimizer.h"
#include "mal/plan_builder.h"

namespace {

using namespace recycledb;        // NOLINT
using namespace recycledb::bench; // NOLINT

std::unique_ptr<Catalog> MicroDb() {
  auto cat = std::make_unique<Catalog>();
  cat->CreateTable("t", {{"k", TypeTag::kOid}, {"v", TypeTag::kInt}});
  std::vector<Oid> keys(10000);
  std::vector<int32_t> vals(10000);
  Rng rng(3);
  for (size_t i = 0; i < keys.size(); ++i) {
    keys[i] = i;
    vals[i] = static_cast<int32_t>(rng.UniformRange(0, 1000));
  }
  RDB_CHECK(cat->LoadColumn<Oid>("t", "k", std::move(keys), true, true).ok());
  RDB_CHECK(cat->LoadColumn<int32_t>("t", "v", std::move(vals)).ok());
  return cat;
}

Program MicroTemplate() {
  PlanBuilder b("micro");
  int lo = b.Param("A0");
  int hi = b.Param("A1");
  int v = b.Bind("t", "v");
  int sel = b.Select(v, lo, hi, true, true);
  int cnt = b.AggrCount(sel);
  b.ExportValue(cnt, "n");
  Program p = b.Build();
  MarkForRecycling(&p);
  return p;
}

/// Warm-pool exact-match lookups: the recycleEntry() fast path.
void BM_MatchHit(benchmark::State& state) {
  auto cat = MicroDb();
  Recycler rec;
  Interpreter interp(cat.get(), &rec);
  Program p = MicroTemplate();
  std::vector<Scalar> params{Scalar::Int(10), Scalar::Int(500)};
  MustRun(&interp, p, params);  // fill the pool
  double match0 = rec.stats().match_ms;
  uint64_t mon0 = rec.stats().monitored;
  for (auto _ : state) {
    MustRun(&interp, p, params);
  }
  double per_instr_us = (rec.stats().match_ms - match0) * 1000.0 /
                        static_cast<double>(rec.stats().monitored - mon0);
  state.counters["match_us_per_instr"] = per_instr_us;
}
BENCHMARK(BM_MatchHit);

/// Match misses with admission: recycleEntry + recycleExit slow path.
void BM_MatchMissAndAdmit(benchmark::State& state) {
  auto cat = MicroDb();
  Recycler rec;
  Interpreter interp(cat.get(), &rec);
  Program p = MicroTemplate();
  int i = 0;
  for (auto _ : state) {
    // Distinct ranges: never hits, always admits.
    std::vector<Scalar> params{Scalar::Int(i % 400), Scalar::Int(i % 400 + 7)};
    MustRun(&interp, p, params);
    ++i;
  }
  state.counters["pool_entries"] =
      static_cast<double>(rec.pool().num_entries());
}
BENCHMARK(BM_MatchMissAndAdmit);

/// Baseline: the interpreter without any recycler attached.
void BM_NoRecycler(benchmark::State& state) {
  auto cat = MicroDb();
  Interpreter interp(cat.get());
  Program p = MicroTemplate();
  std::vector<Scalar> params{Scalar::Int(10), Scalar::Int(500)};
  for (auto _ : state) {
    MustRun(&interp, p, params);
  }
}
BENCHMARK(BM_NoRecycler);

}  // namespace

BENCHMARK_MAIN();
