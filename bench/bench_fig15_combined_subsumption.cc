// Reproduces Figure 15: performance of the combined-subsumption algorithm
// on the SkyServer-derived micro-benchmarks B2 (k=2) and B4 (k=4): per seed
// query, the ratio of total subsumed execution time to regular execution,
// the ratio of the selection time alone, and the absolute time spent in the
// combined-subsumption analysis (Algorithm 2).

#include "bench/bench_common.h"

using namespace recycledb;        // NOLINT
using namespace recycledb::bench; // NOLINT

namespace {

void RunBench(Catalog* cat, int k, int n_seeds, double s) {
  Program scan = skyserver::BuildRaSelectTemplate();
  auto queries = skyserver::GenerateSubsumptionBench(k, n_seeds, s, 4242);

  Recycler rec;
  Interpreter interp(cat, &rec);
  Interpreter naive(cat);

  std::printf("\nBenchmark B%d: %d covering + 1 seed per group, %d seeds, "
              "s=%.1f%%\n",
              k, k, n_seeds, s * 100);
  std::printf("%5s %12s %12s %12s %10s\n", "seed#", "t_sub(ms)", "t_reg(ms)",
              "ratio", "alg(ms)");
  PrintRule(58);

  int seed_no = 0;
  double ratio_sum = 0;
  double max_alg = 0;
  for (const auto& q : queries) {
    if (!q.is_seed) {
      MustRun(&interp, scan, q.params);
      continue;
    }
    ++seed_no;
    double t_reg = MustRun(&naive, scan, q.params).wall_ms;
    double alg0 = rec.stats().subsume_alg_ms;
    uint64_t ch0 = rec.stats().combined_hits;
    double t_sub = MustRun(&interp, scan, q.params).wall_ms;
    double alg = rec.stats().subsume_alg_ms - alg0;
    bool combined = rec.stats().combined_hits > ch0;
    double ratio = t_reg > 0 ? t_sub / t_reg : 1.0;
    ratio_sum += ratio;
    if (alg > max_alg) max_alg = alg;
    std::printf("%5d %12.3f %12.3f %12.2f %10.4f%s\n", seed_no, t_sub, t_reg,
                ratio, alg, combined ? "" : "  (!no combined hit)");
  }
  std::printf("avg ratio %.2f, max algorithm time %.4f ms, pool entries %zu\n",
              ratio_sum / seed_no, max_alg, rec.pool().num_entries());
}

}  // namespace

int main() {
  auto cat = MakeSkyDb(EnvSkyObjects());
  std::printf("Figure 15: combined subsumption micro-benchmarks\n");
  RunBench(cat.get(), /*k=*/2, /*n_seeds=*/20, /*s=*/0.02);  // B2: 60 queries
  RunBench(cat.get(), /*k=*/4, /*n_seeds=*/12, /*s=*/0.02);  // B4: 60 queries
  std::printf(
      "\nShape check vs paper: the subsumed selection runs in a small\n"
      "fraction of the regular scan (paper: ~20%% for the selection\n"
      "operator alone) and the algorithm overhead stays well below 0.5 ms\n"
      "per invocation even as the pool grows.\n");
  return 0;
}
