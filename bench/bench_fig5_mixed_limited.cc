// Reproduces Figure 5: (a) Q19 mixes intra- and inter-query commonality;
// (b) Q14 has almost no overlap between instances and demonstrates the
// recycler's overhead (pool grows, no time is saved).

#include "bench/bench_common.h"

using namespace recycledb;        // NOLINT
using namespace recycledb::bench; // NOLINT

namespace {

void Profile(Catalog* cat, int qnum, int instances) {
  auto q = tpch::BuildQuery(qnum);
  Rng rng(700 + qnum);
  std::printf("\nFigure 5 profile: Q%d, %d instances, KEEPALL/unlimited\n",
              qnum, instances);
  std::printf("%4s %9s %10s %11s %10s %11s %9s\n", "#", "hit-ratio",
              "naive(ms)", "recycl(ms)", "RPmem(MB)", "reused(MB)",
              "+entries");
  PrintRule(72);

  Interpreter naive(cat);
  Recycler rec;
  Interpreter interp(cat, &rec);
  auto warm = q.gen_params(rng);
  MustRun(&naive, q.prog, warm);
  rec.Clear();

  size_t prev_entries = 0;
  for (int i = 1; i <= instances; ++i) {
    auto params = q.gen_params(rng);
    double t_naive = MustRun(&naive, q.prog, params).wall_ms;
    uint64_t mon0 = rec.stats().monitored;
    uint64_t hit0 = rec.stats().hits;
    double t_rec = MustRun(&interp, q.prog, params).wall_ms;
    uint64_t mon = rec.stats().monitored - mon0;
    uint64_t hit = rec.stats().hits - hit0;
    std::printf("%4d %9.2f %10.2f %11.2f %10.2f %11.2f %9zu\n", i,
                mon ? static_cast<double>(hit) / mon : 0.0, t_naive, t_rec,
                Mb(rec.pool().total_bytes()), Mb(rec.pool().ReusedBytes()),
                rec.pool().num_entries() - prev_entries);
    prev_entries = rec.pool().num_entries();
  }
}

}  // namespace

int main() {
  auto cat = MakeTpchDb(EnvSf());
  Profile(cat.get(), 19, 10);  // Fig. 5a: intra + inter
  Profile(cat.get(), 14, 10);  // Fig. 5b: limited overlap -> pure overhead
  std::printf(
      "\nShape check vs paper: Q19 hit ratio rises after instance 1; Q14\n"
      "keeps a small, flat hit ratio while every instance adds entries and\n"
      "memory that are never reused.\n");
  return 0;
}
