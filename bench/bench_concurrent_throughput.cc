// Concurrent query service throughput: sweeps worker counts × workload heat
// (hot = few distinct parameter vectors, so the shared pool answers most
// monitored instructions; cold = fresh parameters every query) and reports
// queries/second, speedup over one worker, and the shared-pool hit ratio.
//
// The point: one pool + the shared_mutex protocol scales instead of
// serialising — misses execute outside any lock, and hot workloads get both
// reuse (less work per query) and parallelism across workers.
//
//   ./bench_concurrent_throughput            # SF from RDB_TPCH_SF (0.01)
//   RDB_MAX_WORKERS=16 ./bench_concurrent_throughput
//   ./bench_concurrent_throughput --json BENCH_concurrent.json \
//                                 --metrics BENCH_metrics.json
//
// --json writes every sample as machine-readable JSON for the CI
// benchmark-regression harness (bench/check_regression.py compares it
// against bench/baseline/BENCH_concurrent.json); every phase row carries
// query wall-latency percentiles (p50_us/p99_us) from the service's
// query_wall_us histogram, and the trace_ablation phase reports tracing
// overhead as a gated within-run qps ratio. --metrics additionally dumps
// the DML-phase service's full metrics registry (DumpMetricsJson: counters,
// gauges, histograms, governance events) as a CI artifact.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <fstream>
#include <thread>

#include "bat/hash_index.h"
#include "bench/bench_common.h"
#include "engine/operators.h"
#include "engine/scalar_ref.h"
#include "engine/vec/hashprobe.h"
#include "net/client.h"
#include "net/server.h"
#include "obs/metrics.h"
#include "server/query_service.h"
#include "util/str.h"

using namespace recycledb;         // NOLINT
using namespace recycledb::bench;  // NOLINT

namespace {

struct Workload {
  const char* name;
  std::vector<QueryRequest> queries;          // timed
  std::vector<QueryRequest> warmup;           // distinct shapes, untimed
};

/// Builds a workload over the given templates. `distinct_params` > 0 draws
/// every timed query from that many pre-warmed parameter vectors per
/// template (hot: the pool answers nearly everything); 0 gives every timed
/// query fresh parameters the warmup never saw (cold: only the
/// parameter-independent plan prefixes can hit).
Workload MakeWorkload(const char* name,
                      const std::vector<tpch::QueryTemplate>& templates,
                      int distinct_params, int n, uint64_t seed) {
  Rng rng(seed);
  Workload w;
  w.name = name;
  std::vector<std::vector<std::vector<Scalar>>> params(templates.size());
  for (size_t t = 0; t < templates.size(); ++t) {
    int warm = distinct_params > 0 ? distinct_params : 1;
    for (int p = 0; p < warm; ++p) {
      params[t].push_back(templates[t].gen_params(rng));
      w.warmup.push_back({&templates[t].prog, params[t][p]});
    }
  }
  for (int i = 0; i < n; ++i) {
    size_t t = i % templates.size();
    std::vector<Scalar> p = distinct_params > 0
                                ? params[t][rng.Uniform(distinct_params)]
                                : templates[t].gen_params(rng);
    w.queries.push_back({&templates[t].prog, std::move(p)});
  }
  return w;
}

struct Sample {
  double qps = 0;
  double hit_ratio = 0;
  uint64_t pool_hits = 0;
  uint64_t p50_us = 0;  ///< query wall-latency percentiles of the best rep
  uint64_t p99_us = 0;
};

/// One row of the machine-readable output (--json): a throughput sample
/// (phase="throughput", load hot/cold), the SQL plan-cache phase
/// (phase="sql_plan_cache"), the mixed SELECT+DML phase
/// (phase="sql_dml_mixed", where hit_ratio is the POST-update hit ratio), or
/// the wire-protocol loopback phase (phase="net_loopback", where p50/p99
/// come from the server's net_request_us histogram).
/// check_regression.py keys rows by (phase, load, workers).
struct JsonRow {
  std::string phase;
  std::string load;
  int workers = 0;
  double qps = 0;
  double hit_ratio = 0;
  uint64_t pool_hits = 0;
  // sql_plan_cache only:
  uint64_t plan_compiles = 0;
  uint64_t plan_hits = 0;
  uint64_t plan_lookups = 0;
  // sql_dml_mixed only: commit-driven pool maintenance (§6.3 split).
  bool has_dml = false;
  uint64_t propagated = 0;
  uint64_t invalidated = 0;
  uint64_t dml_commits = 0;
  // bounded_memory only: governed-budget behaviour (evictions forced by the
  // byte budget, lease borrows beyond the stripe fair share).
  bool has_budget = false;
  uint64_t evicted = 0;
  uint64_t borrows = 0;
  // Per-phase query wall-latency percentiles from the service's
  // query_wall_us histogram (reset per timed window; best rep reported).
  bool has_latency = false;
  uint64_t p50_us = 0;
  uint64_t p99_us = 0;
  // trace_ablation only: throughput relative to the same phase's untraced
  // run — machine-independent, so it gates tracing overhead even where
  // absolute qps is advisory.
  bool has_rel = false;
  double rel_qps = 0;
  // mvcc_mixed only (snapshot row): exclusive-lock reader p99 divided by
  // snapshot-read reader p99 under identical writer churn. > 1 means MVCC
  // improves tail latency; a within-run ratio, binding like rel_qps.
  bool has_rel_p99 = false;
  double rel_p99 = 0;
  // txn_mixed only: multi-statement transaction outcomes under contention
  // (first-writer-wins — conflicts are expected, not failures).
  bool has_txn = false;
  uint64_t txn_committed = 0;
  uint64_t txn_conflicts = 0;
  uint64_t txn_rolled_back = 0;
  // bounded_memory load="encoded" only: the same budgeted phase with column
  // encodings built and encoded intermediates enabled. raw_hit_ratio is the
  // same workload on the same catalog WITHOUT encodings; charging entries at
  // encoded size must fit more working set under the identical budget, so
  // check_regression.py requires hit_ratio > raw_hit_ratio within-run.
  bool has_enc = false;
  double raw_hit_ratio = 0;
  uint64_t pool_encoded_bytes = 0;
  uint64_t encoding_savings_bytes = 0;
};

void WriteJson(const std::string& path, double sf, int max_workers,
               size_t stripes, const std::vector<JsonRow>& rows) {
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    std::abort();
  }
  out << "{\n";
  out << StrFormat(
      "  \"config\": {\"sf\": %g, \"max_workers\": %d, \"stripes\": %zu, "
      "\"hw_threads\": %u},\n",
      sf, max_workers, stripes, std::thread::hardware_concurrency());
  out << "  \"results\": [\n";
  for (size_t i = 0; i < rows.size(); ++i) {
    const JsonRow& r = rows[i];
    out << StrFormat(
        "    {\"phase\": \"%s\", \"load\": \"%s\", \"workers\": %d, "
        "\"qps\": %.2f, \"hit_ratio\": %.4f, \"pool_hits\": %llu",
        r.phase.c_str(), r.load.c_str(), r.workers, r.qps, r.hit_ratio,
        static_cast<unsigned long long>(r.pool_hits));
    if (r.phase == "sql_plan_cache") {
      out << StrFormat(
          ", \"plan_compiles\": %llu, \"plan_hits\": %llu, "
          "\"plan_lookups\": %llu",
          static_cast<unsigned long long>(r.plan_compiles),
          static_cast<unsigned long long>(r.plan_hits),
          static_cast<unsigned long long>(r.plan_lookups));
    }
    if (r.has_dml) {
      out << StrFormat(
          ", \"propagated\": %llu, \"invalidated\": %llu, "
          "\"dml_commits\": %llu",
          static_cast<unsigned long long>(r.propagated),
          static_cast<unsigned long long>(r.invalidated),
          static_cast<unsigned long long>(r.dml_commits));
    }
    if (r.has_budget) {
      out << StrFormat(", \"evicted\": %llu, \"borrows\": %llu",
                       static_cast<unsigned long long>(r.evicted),
                       static_cast<unsigned long long>(r.borrows));
    }
    if (r.has_latency) {
      out << StrFormat(", \"p50_us\": %llu, \"p99_us\": %llu",
                       static_cast<unsigned long long>(r.p50_us),
                       static_cast<unsigned long long>(r.p99_us));
    }
    if (r.has_rel) out << StrFormat(", \"rel_qps\": %.4f", r.rel_qps);
    if (r.has_rel_p99) out << StrFormat(", \"rel_p99\": %.4f", r.rel_p99);
    if (r.has_txn) {
      out << StrFormat(
          ", \"txn_committed\": %llu, \"txn_conflicts\": %llu, "
          "\"txn_rolled_back\": %llu",
          static_cast<unsigned long long>(r.txn_committed),
          static_cast<unsigned long long>(r.txn_conflicts),
          static_cast<unsigned long long>(r.txn_rolled_back));
    }
    if (r.has_enc) {
      out << StrFormat(
          ", \"raw_hit_ratio\": %.4f, \"pool_encoded_bytes\": %llu, "
          "\"encoding_savings_bytes\": %llu",
          r.raw_hit_ratio,
          static_cast<unsigned long long>(r.pool_encoded_bytes),
          static_cast<unsigned long long>(r.encoding_savings_bytes));
    }
    out << (i + 1 < rows.size() ? "},\n" : "}\n");
  }
  out << "  ]\n}\n";
}

/// The one service configuration every phase runs with (worker count set
/// per phase) — also the source of truth for the config block in --json.
ServiceConfig BenchConfig(int workers) {
  ServiceConfig cfg;
  cfg.num_workers = workers;
  return cfg;
}

Sample RunConfig(Catalog* cat, const Workload& w, int workers,
                 uint32_t trace_sample_n = 0) {
  ServiceConfig cfg = BenchConfig(workers);
  cfg.trace_sample_n = trace_sample_n;
  QueryService svc(cat, cfg);
  obs::LatencyHistogram* wall = svc.metrics().FindHistogram("query_wall_us");

  // Short runs are noisy, so take the best of a few repetitions. Each rep
  // restores the same starting state: an empty pool re-warmed with the
  // workload's distinct shapes (steady-state serving, §7 preparation
  // analogue) — otherwise a cold rep would leave its admissions behind and
  // turn the next rep hot.
  Sample s;
  for (int rep = 0; rep < 3; ++rep) {
    svc.recycler().Clear();
    for (auto& r : svc.RunBatch(w.warmup)) {
      if (!r.ok()) {
        std::fprintf(stderr, "warmup failed: %s\n",
                     r.status().ToString().c_str());
        std::abort();
      }
    }
    svc.recycler().ResetStats();
    // Per-rep latency window: reset after warmup so the percentiles cover
    // only the timed queries of this repetition.
    wall->Reset();
    StopWatch sw;
    std::vector<Result<QueryResult>> results = svc.RunBatch(w.queries);
    double secs = sw.ElapsedSeconds();
    for (auto& r : results) {
      if (!r.ok()) {
        std::fprintf(stderr, "query failed: %s\n",
                     r.status().ToString().c_str());
        std::abort();
      }
    }
    double qps = static_cast<double>(w.queries.size()) / secs;
    if (qps > s.qps) {
      s.qps = qps;
      RecyclerStats rs = svc.recycler().stats();
      s.hit_ratio =
          rs.monitored ? static_cast<double>(rs.hits) / rs.monitored : 0.0;
      s.pool_hits = rs.hits;
      obs::LatencyHistogram::Snapshot hist = wall->snapshot();
      s.p50_us = hist.Percentile(50);
      s.p99_us = hist.Percentile(99);
    }
  }
  return s;
}

int EnvMaxWorkers(int def = 8) {
  const char* v = std::getenv("RDB_MAX_WORKERS");
  if (v == nullptr) return def;
  int n = std::atoi(v);
  return n < 1 ? def : n;  // unparsable/zero: fall back to the default
}

/// Mixed ad-hoc SQL workload through Submit(Request): a handful of TPC-H-style
/// query patterns, each instantiated with literals drawn from small pools.
/// Every line is distinct text, but normalisation maps it onto one of a few
/// fingerprints — the compile-once, share-everywhere behaviour the plan
/// cache exists for (compiles ≪ submissions), feeding the recycler the same
/// inter-query commonality the hand-built templates have.
JsonRow RunPlanCachePhase(Catalog* cat, int workers, int n_queries) {
  QueryService svc(cat, BenchConfig(workers));
  obs::LatencyHistogram* wall = svc.metrics().FindHistogram("query_wall_us");
  Session sess;
  Rng rng(4242);

  auto query = [&](int pattern) -> std::string {
    int y = 1993 + static_cast<int>(rng.Uniform(4));
    switch (pattern) {
      case 0:  // Q6-style: fully parameter dependent
        return StrFormat(
            "select sum(l_extendedprice * l_discount) from lineitem "
            "where l_shipdate >= date '%d-01-01' and l_shipdate < date "
            "'%d-01-01' and l_discount between %.2f and %.2f and "
            "l_quantity < %d",
            y, y + 1, 0.02 + 0.01 * rng.Uniform(3),
            0.05 + 0.01 * rng.Uniform(3), 24 + static_cast<int>(rng.Uniform(2)));
      case 1:  // Q1-style: grouped aggregation
        return StrFormat(
            "select l_returnflag, l_linestatus, sum(l_quantity), count(*) "
            "from lineitem where l_shipdate <= date '1998-%02d-01' "
            "group by l_returnflag, l_linestatus",
            1 + static_cast<int>(rng.Uniform(12)));
      case 2:  // Q18 prefix: no literals at all — fully recyclable
        return "select l_orderkey, sum(l_quantity) from lineitem "
               "group by l_orderkey limit 10";
      case 3:  // FK join through the li_orders index
        return StrFormat(
            "select count(*) from lineitem inner join orders "
            "on l_orderkey = o_orderkey where o_orderdate >= date "
            "'%d-01-01' and o_orderdate < date '%d-07-01'",
            y, y);
      default:  // order-priority histogram over a quarter
        return StrFormat(
            "select o_orderpriority, count(*) from orders where o_orderdate "
            "between date '%d-01-01' and date '%d-03-01' "
            "group by o_orderpriority",
            y, y);
    }
  };

  wall->Reset();
  StopWatch sw;
  std::vector<std::future<Result<QueryResult>>> futs;
  futs.reserve(n_queries);
  for (int i = 0; i < n_queries; ++i)
    futs.push_back(svc.Submit(Request{query(i % 5), &sess, {}}).future);
  for (auto& f : futs) {
    auto r = f.get();
    if (!r.ok()) {
      std::fprintf(stderr, "sql query failed: %s\n",
                   r.status().ToString().c_str());
      std::abort();
    }
  }
  double secs = sw.ElapsedSeconds();

  ServiceStats s = svc.SnapshotStats();
  RecyclerStats rs = svc.recycler().stats();
  std::printf("SQL plan cache (%d workers, 5 patterns, %d submissions)\n",
              workers, n_queries);
  std::printf(
      "  qps=%.1f  compiles=%llu  plan-hits=%llu  invalidations=%llu  "
      "(compiles/submissions = %.1f%%)\n",
      n_queries / secs, static_cast<unsigned long long>(s.plan_compiles),
      static_cast<unsigned long long>(s.plan_hits),
      static_cast<unsigned long long>(s.plan_invalidations),
      100.0 * static_cast<double>(s.plan_compiles) /
          static_cast<double>(s.plan_lookups));
  std::printf(
      "  recycler: monitored=%llu pool-hits=%llu (hit ratio %.2f)\n",
      static_cast<unsigned long long>(rs.monitored),
      static_cast<unsigned long long>(rs.hits),
      rs.monitored ? static_cast<double>(rs.hits) / rs.monitored : 0.0);

  JsonRow row;
  row.phase = "sql_plan_cache";
  row.load = "mixed";
  row.workers = workers;
  row.qps = n_queries / secs;
  row.hit_ratio =
      rs.monitored ? static_cast<double>(rs.hits) / rs.monitored : 0.0;
  row.pool_hits = rs.hits;
  row.plan_compiles = s.plan_compiles;
  row.plan_hits = s.plan_hits;
  row.plan_lookups = s.plan_lookups;
  obs::LatencyHistogram::Snapshot hist = wall->snapshot();
  row.has_latency = true;
  row.p50_us = hist.Percentile(50);
  row.p99_us = hist.Percentile(99);
  return row;
}

/// Mixed SELECT+DML update workload through Submit(Request): drained waves of
/// cached-plan SELECTs over `orders` interleaved with committed INSERT
/// batches (insert-only commits, which the recycler must answer with §6.3
/// delta propagation) and DELETE transactions (which must invalidate). The
/// phase owns a private TPC-H copy — it mutates the database.
///
/// Reported: mixed throughput (selects + DML statements per second), the
/// commit-driven pool maintenance counters (propagations/invalidations),
/// and the POST-update hit ratio — a replay wave after the final insert-only
/// commit, measuring how much of the pool survives an update workload in
/// usable (refreshed) form.
JsonRow RunMixedDmlPhase(int workers, int n_rounds, int selects_per_round,
                         const std::string& metrics_path) {
  auto cat = MakeTpchDb(EnvSf());
  const size_t base_rows = cat->FindTable("orders")->num_rows();
  QueryService svc(cat.get(), BenchConfig(workers));
  obs::LatencyHistogram* wall = svc.metrics().FindHistogram("query_wall_us");
  // Readers and the writer run under separate sessions; the writer keeps
  // autocommit OFF so statements stage into its write set until the
  // explicit COMMIT — the legacy staged-delta behaviour, expressed
  // through a session transaction.
  Session select_sess;
  Session dml_sess;
  dml_sess.set_autocommit(false);
  Rng rng(31337);

  auto select_sql = [&](int i) -> std::string {
    int y = 1993 + (i % 4);
    switch (i % 3) {
      case 0:  // single-dep select-over-bind: the propagation target
        return StrFormat(
            "select count(*) from orders where o_orderdate >= date "
            "'%d-01-01'",
            y);
      case 1:
        return StrFormat(
            "select o_orderpriority, count(*) from orders where o_orderdate "
            "between date '%d-01-01' and date '%d-06-01' "
            "group by o_orderpriority",
            y, y);
      default:
        return StrFormat(
            "select sum(o_totalprice) from orders where o_orderdate >= "
            "date '%d-01-01'",
            y);
    }
  };

  auto run_wave = [&](int n, int offset) {
    std::vector<std::future<Result<QueryResult>>> futs;
    futs.reserve(n);
    for (int i = 0; i < n; ++i)
      futs.push_back(
          svc.Submit(Request{select_sql(offset + i), &select_sess, {}}).future);
    for (auto& f : futs) {
      auto r = f.get();
      if (!r.ok()) {
        std::fprintf(stderr, "mixed select failed: %s\n",
                     r.status().ToString().c_str());
        std::abort();
      }
    }
  };
  auto run_dml = [&](const std::string& stmt) {
    auto r = svc.Submit(Request{stmt, &dml_sess, {}}).future.get();
    if (!r.ok()) {
      std::fprintf(stderr, "dml failed (%s): %s\n", stmt.c_str(),
                   r.status().ToString().c_str());
      std::abort();
    }
  };

  // Warm the plan cache and the pool with every pattern.
  run_wave(24, 0);
  svc.recycler().ResetStats();
  wall->Reset();

  // Inserted orders take keys strictly above every generated one (derived,
  // not assumed — generated keys scale with SF), so the periodic DELETE
  // targets exactly the benchmark's own rows.
  Oid key_base = 0;
  for (Oid k : cat->FindTable("orders")->column(0)->Data<Oid>())
    key_base = std::max(key_base, k);
  ++key_base;
  Oid next_key = key_base;
  StopWatch sw;
  int n_statements = 0;
  for (int round = 0; round < n_rounds; ++round) {
    run_wave(selects_per_round, round * selects_per_round);
    n_statements += selects_per_round;
    if (round % 4 == 2) {
      // Delete everything this phase inserted so far: the commit contains
      // deletes and must take the invalidation path.
      run_dml(StrFormat("delete from orders where o_orderkey >= %llu",
                        static_cast<unsigned long long>(key_base)));
    } else {
      // Insert-only transaction: a batch of fresh orders.
      std::string stmt = "insert into orders values ";
      for (int i = 0; i < 8; ++i) {
        if (i) stmt += ", ";
        stmt += StrFormat(
            "(%llu, %llu, 'O', %.2f, date '%d-%02d-01', '3-MEDIUM', "
            "'bench dml row')",
            static_cast<unsigned long long>(next_key++),
            static_cast<unsigned long long>(rng.Uniform(100)),
            1000.0 + static_cast<double>(rng.Uniform(5000)),
            1993 + static_cast<int>(rng.Uniform(4)),
            1 + static_cast<int>(rng.Uniform(12)));
      }
      run_dml(stmt);
    }
    run_dml("commit");
    n_statements += 2;
  }
  double secs = sw.ElapsedSeconds();
  ServiceStats mixed = svc.SnapshotStats();
  obs::LatencyHistogram::Snapshot hist = wall->snapshot();

  // Post-update replay: the last commit was insert-only, so refreshed
  // entries must keep answering the select-over-bind patterns.
  svc.recycler().ResetStats();
  run_wave(2 * selects_per_round, 0);
  RecyclerStats post = svc.recycler().stats();
  double post_hit_ratio =
      post.monitored ? static_cast<double>(post.hits) / post.monitored : 0.0;

  std::printf("mixed SELECT+DML (%d workers, %d rounds, %d selects/round)\n",
              workers, n_rounds, selects_per_round);
  std::printf(
      "  qps=%.1f  inserted=%llu deleted=%llu commits=%llu  "
      "pool: propagated=%llu invalidated=%llu\n",
      n_statements / secs,
      static_cast<unsigned long long>(mixed.dml_inserted_rows),
      static_cast<unsigned long long>(mixed.dml_deleted_rows),
      static_cast<unsigned long long>(mixed.dml_commits),
      static_cast<unsigned long long>(mixed.pool_propagated),
      static_cast<unsigned long long>(mixed.pool_invalidated));
  std::printf(
      "  post-update wave: hit ratio %.2f (hits=%llu monitored=%llu), "
      "orders rows %zu -> %zu\n",
      post_hit_ratio, static_cast<unsigned long long>(post.hits),
      static_cast<unsigned long long>(post.monitored), base_rows,
      cat->FindTable("orders")->num_rows());

  JsonRow row;
  row.phase = "sql_dml_mixed";
  row.load = "mixed";
  row.workers = workers;
  row.qps = n_statements / secs;
  row.hit_ratio = post_hit_ratio;
  row.pool_hits = post.hits;
  row.has_dml = true;
  row.propagated = mixed.pool_propagated;
  row.invalidated = mixed.pool_invalidated;
  row.dml_commits = mixed.dml_commits;
  row.has_latency = true;
  row.p50_us = hist.Percentile(50);
  row.p99_us = hist.Percentile(99);

  // The richest service of the run (DML events, every counter family): its
  // metrics dump is what CI uploads as the machine-readable artifact.
  if (!metrics_path.empty()) {
    std::ofstream out(metrics_path);
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", metrics_path.c_str());
      std::abort();
    }
    out << svc.DumpMetricsJson() << "\n";
    std::printf("wrote %s\n", metrics_path.c_str());
  }
  return row;
}

/// MVCC ablation: reader latency DURING an in-flight commit, snapshot
/// reads vs the exclusive-lock baseline. Two sub-runs over identical
/// private TPC-H copies and identical workloads, differing only in
/// ServiceConfig::snapshot_reads:
///
///   load="snapshot"  — MVCC reads: SELECTs run against the submission-time
///                      epoch with no update-lock hold, so in-flight commits
///                      never stall them.
///   load="exclusive" — the PR 1 baseline: every SELECT registers at the
///                      update gate and takes a shared hold of the update
///                      lock, so it queues behind the commit for the rest of
///                      the hold.
///
/// Each timed SELECT is issued while a commit window is HELD OPEN on
/// another thread (ApplyUpdate with a fixed-length mutator — the stand-in
/// for a production commit applying a fat delta plus its §6.3 pool
/// maintenance; at bench scale factors real commits finish in microseconds
/// and the comparison would drown in scheduler noise). Between iterations a
/// real autocommit INSERT/DELETE transaction runs, so snapshot epochs bump
/// and pool entries take the propagate/refresh path exactly as in
/// production — only the measured window is synthetic, not the churn.
///
/// The deliberate consequence: in exclusive mode EVERY sample pays the
/// remaining hold (a structural floor), while snapshot samples complete in
/// pool-hit time. The snapshot row carries rel_p99 = exclusive reader p99 /
/// snapshot reader p99 — a within-run, machine-independent ratio (> 1
/// means MVCC improves the tail) that check_regression.py gates with a
/// hard floor of 1.0. Reported qps is reader submissions per second of
/// phase time; both modes pace on the hold length, so it is a sanity
/// number, not the headline.
std::vector<JsonRow> RunMvccMixedPhase(int workers, int n_iters,
                                       int hold_us) {
  struct ModeResult {
    double qps = 0;
    double hit_ratio = 0;
    uint64_t pool_hits = 0;
    uint64_t p50_us = 0;
    uint64_t p99_us = 0;
  };

  auto run_mode = [&](bool snapshot_reads) -> ModeResult {
    auto cat = MakeTpchDb(EnvSf());
    ServiceConfig cfg = BenchConfig(workers);
    cfg.snapshot_reads = snapshot_reads;
    QueryService svc(cat.get(), cfg);
    Rng rng(snapshot_reads ? 7001 : 7002);

    auto select_sql = [](int i) -> std::string {
      int y = 1993 + (i % 4);
      if (i % 2 == 0)
        return StrFormat(
            "select count(*) from orders where o_orderdate >= date "
            "'%d-01-01'",
            y);
      return StrFormat(
          "select sum(o_totalprice) from orders where o_orderdate >= "
          "date '%d-01-01'",
          y);
    };

    // Warm every pattern so the timed window measures steady-state serving,
    // not compiles or cold pool admissions.
    Session reader_session;
    for (int i = 0; i < 8; ++i) {
      auto r = svc.Submit(Request{select_sql(i), &reader_session, {}})
                   .future.get();
      if (!r.ok()) {
        std::fprintf(stderr, "mvcc warmup failed: %s\n",
                     r.status().ToString().c_str());
        std::abort();
      }
    }
    svc.recycler().ResetStats();

    // Real DML churn between measured iterations: autocommit INSERT batches
    // (insert-only commits -> §6.3 propagation) with a periodic DELETE
    // sweep (-> invalidation), each bumping the snapshot epoch.
    Oid key_base = 0;
    for (Oid k : cat->FindTable("orders")->column(0)->Data<Oid>())
      key_base = std::max(key_base, k);
    ++key_base;
    Oid next_key = key_base;
    Session writer_session;  // autocommit defaults on
    int txn = 0;
    auto churn_once = [&] {
      std::string stmt;
      if (++txn % 5 == 0) {
        stmt = StrFormat("delete from orders where o_orderkey >= %llu",
                         static_cast<unsigned long long>(key_base));
      } else {
        stmt = "insert into orders values ";
        for (int i = 0; i < 8; ++i) {
          if (i) stmt += ", ";
          stmt += StrFormat(
              "(%llu, %llu, 'O', %.2f, date '%d-%02d-01', '3-MEDIUM', "
              "'bench dml row')",
              static_cast<unsigned long long>(next_key++),
              static_cast<unsigned long long>(rng.Uniform(100)),
              1000.0 + static_cast<double>(rng.Uniform(5000)),
              1993 + static_cast<int>(rng.Uniform(4)),
              1 + static_cast<int>(rng.Uniform(12)));
        }
      }
      Request dreq;
      dreq.sql = std::move(stmt);
      dreq.session = &writer_session;
      auto r = svc.Submit(std::move(dreq)).future.get();
      if (!r.ok()) {
        std::fprintf(stderr, "mvcc writer dml failed: %s\n",
                     r.status().ToString().c_str());
        std::abort();
      }
    };

    // Per-mode repetitions with the MEDIAN-p99 rep kept: the median dodges
    // a throttled outlier rep without letting a lucky rep (one where
    // scheduling hid the lock waits) stand in for the mode.
    std::vector<ModeResult> reps;
    for (int rep = 0; rep < 3; ++rep) {
      std::vector<double> lat_us;
      lat_us.reserve(n_iters);
      StopWatch sw;
      for (int k = 0; k < n_iters; ++k) {
        if (k % 4 == 0) churn_once();
        // Open a commit window and keep it open; `held` flips once the
        // mutator is inside the exclusive section, so the SELECT below is
        // provably issued mid-commit.
        std::atomic<bool> held{false};
        std::thread holder([&] {
          Status st = svc.ApplyUpdate([&](Catalog*) {
            held.store(true, std::memory_order_release);
            std::this_thread::sleep_for(std::chrono::microseconds(hold_us));
            return Status::OK();
          });
          if (!st.ok()) {
            std::fprintf(stderr, "mvcc hold failed: %s\n",
                         st.ToString().c_str());
            std::abort();
          }
        });
        while (!held.load(std::memory_order_acquire))
          std::this_thread::yield();
        StopWatch one;
        auto r = svc.Submit(Request{select_sql(k), &reader_session, {}})
                     .future.get();
        lat_us.push_back(one.ElapsedSeconds() * 1e6);
        holder.join();
        if (!r.ok()) {
          std::fprintf(stderr, "mvcc reader select failed: %s\n",
                       r.status().ToString().c_str());
          std::abort();
        }
      }
      double secs = sw.ElapsedSeconds();

      std::sort(lat_us.begin(), lat_us.end());
      auto pct = [&](double p) -> uint64_t {
        if (lat_us.empty()) return 0;
        size_t idx = static_cast<size_t>(
            p / 100.0 * static_cast<double>(lat_us.size() - 1));
        return static_cast<uint64_t>(lat_us[idx]);
      };
      ModeResult m;
      m.qps = static_cast<double>(n_iters) / secs;
      RecyclerStats rs = svc.recycler().stats();
      m.hit_ratio =
          rs.monitored ? static_cast<double>(rs.hits) / rs.monitored : 0.0;
      m.pool_hits = rs.hits;
      m.p50_us = pct(50);
      m.p99_us = pct(99);
      reps.push_back(m);
      svc.recycler().ResetStats();
    }
    std::sort(reps.begin(), reps.end(),
              [](const ModeResult& a, const ModeResult& b) {
                return a.p99_us < b.p99_us;
              });
    return reps[reps.size() / 2];
  };

  ModeResult snap = run_mode(true);
  ModeResult excl = run_mode(false);
  double rel_p99 = snap.p99_us > 0
                       ? static_cast<double>(excl.p99_us) /
                             static_cast<double>(snap.p99_us)
                       : 0.0;

  std::printf(
      "mvcc mixed (%d workers, %d reads mid-commit, %dus commit hold)\n",
      workers, n_iters, hold_us);
  std::printf("  snapshot : qps=%.1f p50=%lluus p99=%lluus hit=%.2f\n",
              snap.qps, static_cast<unsigned long long>(snap.p50_us),
              static_cast<unsigned long long>(snap.p99_us), snap.hit_ratio);
  std::printf("  exclusive: qps=%.1f p50=%lluus p99=%lluus hit=%.2f\n",
              excl.qps, static_cast<unsigned long long>(excl.p50_us),
              static_cast<unsigned long long>(excl.p99_us), excl.hit_ratio);
  std::printf("  reader p99 advantage (exclusive/snapshot): %.2fx\n", rel_p99);

  std::vector<JsonRow> rows;
  JsonRow s;
  s.phase = "mvcc_mixed";
  s.load = "snapshot";
  s.workers = workers;
  s.qps = snap.qps;
  s.hit_ratio = snap.hit_ratio;
  s.pool_hits = snap.pool_hits;
  s.has_latency = true;
  s.p50_us = snap.p50_us;
  s.p99_us = snap.p99_us;
  s.has_rel_p99 = true;
  s.rel_p99 = rel_p99;
  rows.push_back(s);
  JsonRow e;
  e.phase = "mvcc_mixed";
  e.load = "exclusive";
  e.workers = workers;
  e.qps = excl.qps;
  e.hit_ratio = excl.hit_ratio;
  e.pool_hits = excl.pool_hits;
  e.has_latency = true;
  e.p50_us = excl.p50_us;
  e.p99_us = excl.p99_us;
  rows.push_back(e);
  return rows;
}

/// Transaction-mixed phase: concurrent multi-statement UPDATE transactions
/// racing over overlapping key bands (BEGIN; UPDATE ...; COMMIT, with a
/// periodic ROLLBACK) while snapshot SELECT waves read beside them. Under
/// first-writer-wins, WriteConflict commits are EXPECTED outcomes — a loser
/// simply lost the race — so only non-conflict errors abort the phase.
/// Reported (and written to --json as phase="txn_mixed"): mixed throughput
/// (reader + writer statements per second), the service's transaction
/// counters (committed / conflicts / rolled back), and the post-churn pool
/// hit ratio — a replay wave after the writers finish, measuring how much
/// of the pool an update-transaction workload leaves in usable form.
JsonRow RunTxnMixedPhase(int workers, int n_writers, int rounds,
                         int selects_per_round) {
  auto cat = MakeTpchDb(EnvSf());
  QueryService svc(cat.get(), BenchConfig(workers));
  obs::LatencyHistogram* wall = svc.metrics().FindHistogram("query_wall_us");
  Session select_sess;

  auto select_sql = [](int i) -> std::string {
    int y = 1993 + (i % 4);
    if (i % 2 == 0)
      return StrFormat(
          "select count(*) from orders where o_orderdate >= date '%d-01-01'",
          y);
    return StrFormat(
        "select sum(o_totalprice) from orders where o_orderdate >= "
        "date '%d-01-01'",
        y);
  };
  auto run_wave = [&](int n, int offset) {
    std::vector<std::future<Result<QueryResult>>> futs;
    futs.reserve(n);
    for (int i = 0; i < n; ++i)
      futs.push_back(
          svc.Submit(Request{select_sql(offset + i), &select_sess, {}})
              .future);
    for (auto& f : futs) {
      auto r = f.get();
      if (!r.ok()) {
        std::fprintf(stderr, "txn-mixed select failed: %s\n",
                     r.status().ToString().c_str());
        std::abort();
      }
    }
  };

  run_wave(16, 0);  // warm plans + pool
  svc.recycler().ResetStats();
  wall->Reset();

  std::atomic<uint64_t> writer_statements{0};
  std::atomic<int> writers_finished{0};
  StopWatch sw;
  std::vector<std::thread> writers;
  writers.reserve(n_writers);
  for (int t = 0; t < n_writers; ++t) {
    writers.emplace_back([&, t] {
      Session sess;
      Rng wrng(9100 + static_cast<uint64_t>(t));
      auto exec = [&](const std::string& stmt) -> Status {
        auto r = svc.Submit(Request{stmt, &sess, {}}).future.get();
        writer_statements.fetch_add(1, std::memory_order_relaxed);
        return r.ok() ? Status::OK() : r.status();
      };
      for (int r = 0; r < rounds; ++r) {
        Status st = exec("begin");
        if (!st.ok()) std::abort();
        // Half the transactions target one shared low band — guaranteed
        // overlap across writers (conflicts); the rest stay in a private
        // per-writer band (clean commits).
        const unsigned long long lo =
            wrng.Uniform(2) == 0
                ? 0
                : 32ull + static_cast<unsigned long long>(t) * 24;
        st = exec(StrFormat(
            "update orders set o_totalprice = o_totalprice + 1 "
            "where o_orderkey >= %llu and o_orderkey < %llu",
            lo, lo + 24));
        if (!st.ok()) std::abort();  // in-txn UPDATE itself cannot conflict
        if (r % 7 == 3) {
          if (!exec("rollback").ok()) std::abort();
          continue;
        }
        st = exec("commit");
        if (!st.ok() && st.code() != StatusCode::kWriteConflict)
          std::abort();  // conflicts are expected; anything else is a bug
      }
      writers_finished.fetch_add(1, std::memory_order_release);
    });
  }
  // Reader waves run for as long as the writers do — snapshot reads beside
  // committing transactions, the paper's multi-user mix.
  int n_selects = 0;
  for (int r = 0; writers_finished.load(std::memory_order_acquire) < n_writers;
       ++r) {
    run_wave(selects_per_round, r * selects_per_round);
    n_selects += selects_per_round;
  }
  for (auto& th : writers) th.join();
  double secs = sw.ElapsedSeconds();
  ServiceStats s = svc.SnapshotStats();
  obs::LatencyHistogram::Snapshot hist = wall->snapshot();

  // Post-churn replay: what the transaction workload left in the pool.
  svc.recycler().ResetStats();
  run_wave(2 * selects_per_round, 0);
  RecyclerStats post = svc.recycler().stats();
  double post_hit_ratio =
      post.monitored ? static_cast<double>(post.hits) / post.monitored : 0.0;

  const double n_statements =
      static_cast<double>(n_selects) +
      static_cast<double>(writer_statements.load(std::memory_order_relaxed));
  std::printf(
      "txn mixed (%d workers, %d writer sessions x %d txns, %d selects/wave)\n",
      workers, n_writers, rounds, selects_per_round);
  std::printf(
      "  qps=%.1f  committed=%llu conflicts=%llu rolled-back=%llu "
      "updated-rows=%llu\n",
      n_statements / secs, static_cast<unsigned long long>(s.txn_committed),
      static_cast<unsigned long long>(s.txn_conflicts),
      static_cast<unsigned long long>(s.txn_rolled_back),
      static_cast<unsigned long long>(s.dml_updated_rows));
  std::printf("  post-churn wave: hit ratio %.2f (hits=%llu monitored=%llu)\n",
              post_hit_ratio, static_cast<unsigned long long>(post.hits),
              static_cast<unsigned long long>(post.monitored));

  JsonRow row;
  row.phase = "txn_mixed";
  row.load = "mixed";
  row.workers = workers;
  row.qps = n_statements / secs;
  row.hit_ratio = post_hit_ratio;
  row.pool_hits = post.hits;
  row.has_txn = true;
  row.txn_committed = s.txn_committed;
  row.txn_conflicts = s.txn_conflicts;
  row.txn_rolled_back = s.txn_rolled_back;
  row.has_latency = true;
  row.p50_us = hist.Percentile(50);
  row.p99_us = hist.Percentile(99);
  return row;
}

/// Bounded-memory serving: the same hot workload under a FIXED recycle-pool
/// byte budget in the default kPerStripe governance mode — per-stripe
/// leases, stripe-local eviction, borrowing through the governor's atomic
/// ledger. Reported (and gated by check_regression.py): throughput, the
/// steady-state hit ratio under eviction pressure, and the governance
/// counters — budget-forced evictions and lease borrows. An admission-path
/// regression back to the all-stripe lock shows up as a qps collapse; a
/// governance regression shows up in the counters.
JsonRow RunBoundedMemoryPhase(Catalog* cat,
                              const std::vector<tpch::QueryTemplate>& templates,
                              int workers, int n_queries) {
  ServiceConfig cfg = BenchConfig(workers);
  cfg.recycler.max_bytes = 1024 * 1024;  // fixed budget, deliberately tight
  cfg.recycler.eviction = EvictionKind::kLru;
  QueryService svc(cat, cfg);
  obs::LatencyHistogram* wall = svc.metrics().FindHistogram("query_wall_us");

  // More distinct parameter vectors than the hot phase: enough working set
  // to keep the budget under continuous pressure, enough repetition that
  // surviving entries still hit.
  Workload w = MakeWorkload("bound", templates, 12, n_queries, 9003);
  for (auto& r : svc.RunBatch(w.warmup)) {
    if (!r.ok()) {
      std::fprintf(stderr, "bounded warmup failed: %s\n",
                   r.status().ToString().c_str());
      std::abort();
    }
  }
  svc.recycler().ResetStats();
  wall->Reset();
  StopWatch sw;
  std::vector<Result<QueryResult>> results = svc.RunBatch(w.queries);
  double secs = sw.ElapsedSeconds();
  for (auto& r : results) {
    if (!r.ok()) {
      std::fprintf(stderr, "bounded query failed: %s\n",
                   r.status().ToString().c_str());
      std::abort();
    }
  }

  RecyclerStats rs = svc.recycler().stats();
  ServiceStats s = svc.SnapshotStats();
  if (svc.recycler().pool_bytes() > cfg.recycler.max_bytes) {
    std::fprintf(stderr, "BUDGET VIOLATED: pool %zu > %zu\n",
                 svc.recycler().pool_bytes(), cfg.recycler.max_bytes);
    std::abort();
  }
  std::printf(
      "bounded memory (%d workers, %zu KB budget, %d queries)\n"
      "  qps=%.1f hit-ratio=%.2f evicted=%llu borrows=%llu rebalances=%llu "
      "all-stripe-ops=%llu pool=%zu/%zu KB\n",
      workers, cfg.recycler.max_bytes / 1024, n_queries,
      n_queries / secs,
      rs.monitored ? static_cast<double>(rs.hits) / rs.monitored : 0.0,
      static_cast<unsigned long long>(rs.evicted),
      static_cast<unsigned long long>(s.pool_borrows),
      static_cast<unsigned long long>(s.pool_rebalances),
      static_cast<unsigned long long>(s.pool_all_stripe_ops),
      svc.recycler().pool_bytes() / 1024, cfg.recycler.max_bytes / 1024);

  JsonRow row;
  row.phase = "bounded_memory";
  row.load = "hot";
  row.workers = workers;
  row.qps = n_queries / secs;
  row.hit_ratio =
      rs.monitored ? static_cast<double>(rs.hits) / rs.monitored : 0.0;
  row.pool_hits = rs.hits;
  row.has_budget = true;
  row.evicted = rs.evicted;
  row.borrows = s.pool_borrows;
  obs::LatencyHistogram::Snapshot hist = wall->snapshot();
  row.has_latency = true;
  row.p50_us = hist.Percentile(50);
  row.p99_us = hist.Percentile(99);
  return row;
}

/// Encoded-intermediates bounded-memory ablation: the bounded_memory
/// workload twice on a private TPC-H copy — once raw, once after
/// Catalog::BuildEncodings() with SetEncodedIntermediates(true) — under the
/// IDENTICAL 1 MB budget. Recycled entries are charged at encoded size, so
/// the encoded run fits more of the working set and must post a strictly
/// higher steady-state hit ratio (gated within-run by check_regression.py,
/// like rel_qps: machine-independent). The row also carries the end-of-run
/// pool gauges pool_encoded_bytes / encoding_savings_bytes; the latter must
/// be positive or the encoding layer silently stopped producing.
JsonRow RunBoundedMemoryEncodedPhase(
    const std::vector<tpch::QueryTemplate>& templates, int workers,
    int n_queries) {
  // Private catalog: BuildEncodings attaches sidecars to catalog columns,
  // which must not leak into the other phases' (raw) measurements.
  auto cat = MakeTpchDb(EnvSf());
  Workload w = MakeWorkload("bound", templates, 12, n_queries, 9003);

  struct SubRun {
    double qps = 0;
    double hit_ratio = 0;
    uint64_t hits = 0;
    uint64_t evicted = 0;
    uint64_t borrows = 0;
    size_t enc_bytes = 0;
    size_t save_bytes = 0;
  };
  auto run = [&](const char* tag) {
    ServiceConfig cfg = BenchConfig(workers);
    cfg.recycler.max_bytes = 1024 * 1024;
    cfg.recycler.eviction = EvictionKind::kLru;
    QueryService svc(cat.get(), cfg);
    for (auto& r : svc.RunBatch(w.warmup)) {
      if (!r.ok()) {
        std::fprintf(stderr, "bounded/%s warmup failed: %s\n", tag,
                     r.status().ToString().c_str());
        std::abort();
      }
    }
    svc.recycler().ResetStats();
    StopWatch sw;
    std::vector<Result<QueryResult>> results = svc.RunBatch(w.queries);
    double secs = sw.ElapsedSeconds();
    for (auto& r : results) {
      if (!r.ok()) {
        std::fprintf(stderr, "bounded/%s query failed: %s\n", tag,
                     r.status().ToString().c_str());
        std::abort();
      }
    }
    if (svc.recycler().pool_bytes() > cfg.recycler.max_bytes) {
      std::fprintf(stderr, "BUDGET VIOLATED (%s): pool %zu > %zu\n", tag,
                   svc.recycler().pool_bytes(), cfg.recycler.max_bytes);
      std::abort();
    }
    RecyclerStats rs = svc.recycler().stats();
    ServiceStats s = svc.SnapshotStats();
    SubRun out;
    out.qps = n_queries / secs;
    out.hit_ratio =
        rs.monitored ? static_cast<double>(rs.hits) / rs.monitored : 0.0;
    out.hits = rs.hits;
    out.evicted = rs.evicted;
    out.borrows = s.pool_borrows;
    out.enc_bytes = svc.recycler().pool_encoded_bytes();
    out.save_bytes = svc.recycler().encoding_savings_bytes();
    return out;
  };

  SubRun raw = run("raw");
  size_t ncols = cat->BuildEncodings();
  SetEncodedIntermediates(true);
  SubRun enc = run("encoded");
  SetEncodedIntermediates(false);

  std::printf(
      "bounded memory, encoded intermediates (%d workers, 1024 KB budget, "
      "%d queries, %zu cols encoded)\n"
      "  raw:     qps=%.1f hit-ratio=%.2f evicted=%llu\n"
      "  encoded: qps=%.1f hit-ratio=%.2f evicted=%llu pool-encoded=%zu KB "
      "savings=%zu KB\n",
      workers, n_queries, ncols, raw.qps, raw.hit_ratio,
      static_cast<unsigned long long>(raw.evicted), enc.qps, enc.hit_ratio,
      static_cast<unsigned long long>(enc.evicted), enc.enc_bytes / 1024,
      enc.save_bytes / 1024);

  JsonRow row;
  row.phase = "bounded_memory";
  row.load = "encoded";
  row.workers = workers;
  row.qps = enc.qps;
  row.hit_ratio = enc.hit_ratio;
  row.pool_hits = enc.hits;
  row.has_budget = true;
  row.evicted = enc.evicted;
  row.borrows = enc.borrows;
  row.has_enc = true;
  row.raw_hit_ratio = raw.hit_ratio;
  row.pool_encoded_bytes = enc.enc_bytes;
  row.encoding_savings_bytes = enc.save_bytes;
  return row;
}

// ---------------------------------------------------------------------------
// Vectorised-kernel ablation: the rewritten engine entry points against the
// retained element-at-a-time reference loops (engine/scalar_ref.h — the
// former production code, kept verbatim) on scalar-adverse shapes: random
// unsorted data so branches don't predict, working sets past L2 so the
// probe's prefetch pipeline matters. Reported as within-run rel_qps
// (vectorised ÷ scalar), machine-independent and gated with a hard floor by
// check_regression.py. Outputs are cross-checked before timing — a kernel
// that got fast by getting wrong aborts the bench.
// ---------------------------------------------------------------------------

struct KernelTiming {
  double vec_secs = 0;  ///< best per-call seconds of the vectorised kernel
  double rel = 0;       ///< median of per-rep (scalar / vec) ratios
};

/// Times the vectorised and scalar implementations back to back within each
/// repetition and reports the MEDIAN per-rep ratio: adjacent windows share
/// whatever load the host is under, so common-mode jitter cancels out of
/// the ratio, and the median discards a repetition that caught a spike —
/// the ratio is the gated number, so its stability matters more than the
/// absolute throughput's.
template <typename FV, typename FS>
KernelTiming TimeKernelPair(int reps, int iters, FV&& vec_fn, FS&& scalar_fn) {
  KernelTiming t;
  t.vec_secs = 1e100;
  std::vector<double> ratios;
  for (int r = 0; r < reps; ++r) {
    StopWatch swv;
    for (int i = 0; i < iters; ++i) vec_fn();
    double vs = swv.ElapsedSeconds() / iters;
    StopWatch sws;
    for (int i = 0; i < iters; ++i) scalar_fn();
    double ss = sws.ElapsedSeconds() / iters;
    t.vec_secs = std::min(t.vec_secs, vs);
    ratios.push_back(ss / vs);
  }
  std::sort(ratios.begin(), ratios.end());
  t.rel = ratios[ratios.size() / 2];
  return t;
}

/// Order-sensitive FNV over one side; dense sides hash the virtual oids.
template <typename T>
uint64_t SideChecksum(const BatSide& s, size_t n) {
  uint64_t h = 0xcbf29ce484222325ull ^ n;
  if (s.dense()) {
    for (size_t i = 0; i < n; ++i)
      h = (h ^ (s.seq + i)) * 0x100000001b3ull;
    return h;
  }
  SideReader<T> r(s, n);
  for (size_t i = 0; i < n; ++i)
    h = (h ^ static_cast<uint64_t>(r[i])) * 0x100000001b3ull;
  return h;
}

/// Checksum over both sides of an output bat (H/T = physical side types):
/// distinguishes any membership, value, or ordering difference.
template <typename H, typename T>
uint64_t KernelChecksum(const BatPtr& b) {
  return SideChecksum<H>(b->head(), b->size()) * 31 +
         SideChecksum<T>(b->tail(), b->size());
}

JsonRow MakeKernelRow(const char* phase, const KernelTiming& t) {
  JsonRow row;
  row.phase = phase;
  row.load = "vec";
  row.workers = 1;
  row.qps = 1.0 / t.vec_secs;  // kernel invocations per second
  row.has_rel = true;
  row.rel_qps = t.rel;
  std::printf("  %-18s %9.1f /s %8.2fx\n", phase, row.qps, row.rel_qps);
  return row;
}

std::vector<JsonRow> RunKernelPhases() {
  using engine::AggFn;
  constexpr int kReps = 5;
  std::vector<JsonRow> rows;
  std::printf("vectorised kernels vs scalar reference (single-threaded)\n");
  std::printf("  %-18s %12s %9s\n", "kernel", "vec", "rel");

  // Range select: 1M random unsorted int32 (~1.5% nils), ~20% selectivity —
  // the scalar loop's bound branches mispredict, the bitmap pass doesn't.
  {
    const size_t n = 1u << 20;
    Rng rng(11001);
    std::vector<int32_t> vals(n);
    for (size_t i = 0; i < n; ++i) {
      vals[i] = rng.Uniform(64) == 0 ? NilOf<int32_t>()
                                     : static_cast<int32_t>(rng.Uniform(1000));
    }
    BatPtr b =
        Bat::DenseHead(Column::Make<int32_t>(TypeTag::kInt, std::move(vals)));
    const Scalar lo = Scalar::Int(100), hi = Scalar::Int(299);
    BatPtr vr = engine::Select(b, lo, hi, true, true).ValueOrDie();
    BatPtr sr =
        engine::scalar_ref::ScanRangeSelect(b, lo, hi, true, true).ValueOrDie();
    if ((KernelChecksum<Oid, int32_t>(vr)) !=
        (KernelChecksum<Oid, int32_t>(sr))) {
      std::fprintf(stderr, "kernel_select output mismatch\n");
      std::abort();
    }
    KernelTiming t = TimeKernelPair(
        kReps, 8,
        [&] { engine::Select(b, lo, hi, true, true).ValueOrDie(); },
        [&] {
          engine::scalar_ref::ScanRangeSelect(b, lo, hi, true, true)
              .ValueOrDie();
        });
    rows.push_back(MakeKernelRow("kernel_select", t));
  }

  // Hash-join probe: a prebuilt 256K-unique-key index probed by 1M random
  // keys at ~25% match rate — a selective FK join shape where the scalar
  // loop's empty-bucket and match branches mispredict constantly. The
  // branch-free unique-inner probe (BatchProbeUnique: cmov'd chain head,
  // unconditional compare, store-and-advance compaction) replaces every
  // data-dependent branch with arithmetic. Index build and output
  // materialisation are identical in both implementations and excluded, so
  // the ratio isolates the probe kernel CI gates on.
  {
    const size_t rn = 1u << 18;
    const size_t ln = 1u << 20;
    Rng rng(11002);
    std::vector<int64_t> rkeys(rn);
    for (size_t i = 0; i < rn; ++i) rkeys[i] = static_cast<int64_t>(i);
    for (size_t i = rn - 1; i > 0; --i) {
      std::swap(rkeys[i], rkeys[rng.Uniform(i + 1)]);
    }
    std::vector<int64_t> probes(ln);
    for (size_t i = 0; i < ln; ++i) {
      probes[i] = static_cast<int64_t>(rng.Uniform(4 * rn));
    }
    HashIndexT<int64_t> index(rkeys.data(), rn);
    std::vector<uint32_t> sel, pos;
    auto vec_probe = [&] {
      sel.resize(ln);
      pos.resize(ln);
      size_t o = engine::vec::BatchProbeUnique(index, probes.data(), ln,
                                               sel.data(), pos.data());
      sel.resize(o);
      pos.resize(o);
    };
    auto scalar_probe = [&] {
      sel.clear();
      pos.clear();
      for (size_t i = 0; i < ln; ++i) {
        index.ForEachMatch(probes[i], [&](uint32_t p) {
          sel.push_back(static_cast<uint32_t>(i));
          pos.push_back(p);
        });
      }
    };
    auto outputs_hash = [&] {
      uint64_t h = 0xcbf29ce484222325ull ^ sel.size();
      for (size_t i = 0; i < sel.size(); ++i) {
        h = (h ^ sel[i]) * 0x100000001b3ull;
        h = (h ^ pos[i]) * 0x100000001b3ull;
      }
      return h;
    };
    vec_probe();
    uint64_t vh = outputs_hash();
    scalar_probe();
    if (vh != outputs_hash()) {
      std::fprintf(stderr, "kernel_join_probe output mismatch\n");
      std::abort();
    }
    KernelTiming t = TimeKernelPair(kReps, 4, vec_probe, scalar_probe);
    rows.push_back(MakeKernelRow("kernel_join_probe", t));
  }

  // Grouped sum: 1M int64 values with 30% random nils into 64 groups — the
  // scalar loop's nil branch is unpredictable at that density; the
  // vectorised accumulator multiplies by the validity mask instead.
  {
    const size_t n = 1u << 20;
    const size_t ngroups = 64;
    Rng rng(11003);
    std::vector<int64_t> vals(n);
    std::vector<Oid> gids(n);
    for (size_t i = 0; i < n; ++i) {
      vals[i] = rng.Uniform(10) < 3 ? NilOf<int64_t>()
                                    : static_cast<int64_t>(rng.Uniform(1000));
      gids[i] = rng.Uniform(ngroups);
    }
    BatPtr vb =
        Bat::DenseHead(Column::Make<int64_t>(TypeTag::kLng, std::move(vals)));
    BatPtr mb = Bat::DenseHead(Column::Make<Oid>(TypeTag::kOid, std::move(gids)));
    BatPtr vr =
        engine::GroupedAggr(AggFn::kSum, vb, mb, ngroups).ValueOrDie();
    BatPtr sr = engine::scalar_ref::GroupedAggr(AggFn::kSum, vb, mb, ngroups)
                    .ValueOrDie();
    if ((KernelChecksum<Oid, int64_t>(vr)) !=
        (KernelChecksum<Oid, int64_t>(sr))) {
      std::fprintf(stderr, "kernel_groupagg output mismatch\n");
      std::abort();
    }
    KernelTiming t = TimeKernelPair(
        kReps, 8,
        [&] { engine::GroupedAggr(AggFn::kSum, vb, mb, ngroups).ValueOrDie(); },
        [&] {
          engine::scalar_ref::GroupedAggr(AggFn::kSum, vb, mb, ngroups)
              .ValueOrDie();
        });
    rows.push_back(MakeKernelRow("kernel_groupagg", t));
  }
  return rows;
}

/// Tracing-overhead ablation: the hot workload at three trace settings —
/// off (the default), 1-in-64 sampling, and always-on — reported as
/// throughput RELATIVE to the untraced run of this same phase. The ratio is
/// machine-independent, so check_regression.py gates it even where absolute
/// qps is advisory: traced-off must stay at parity (the untraced hot path
/// pays one branch), sampling must stay near parity; always-on is reported
/// but not gated (its cost is proportional to monitored instructions by
/// design).
std::vector<JsonRow> RunTraceAblationPhase(
    Catalog* cat, const std::vector<tpch::QueryTemplate>& templates,
    int workers, int n_queries) {
  struct Setting {
    const char* load;
    uint32_t sample_n;
  };
  const Setting settings[] = {{"none", 0}, {"sampled64", 64}, {"always", 1}};

  Workload w = MakeWorkload("trace", templates, 2, n_queries, 6007);
  std::printf("trace ablation (%d workers, %d queries, hot)\n", workers,
              n_queries);
  std::vector<JsonRow> rows;
  double base_qps = 0;
  for (const Setting& set : settings) {
    Sample s = RunConfig(cat, w, workers, set.sample_n);
    if (set.sample_n == 0) base_qps = s.qps;
    double rel = base_qps > 0 ? s.qps / base_qps : 0;
    std::printf(
        "  %-9s qps=%-8.1f rel=%.3f p50=%lluus p99=%lluus hit-ratio=%.2f\n",
        set.load, s.qps, rel, static_cast<unsigned long long>(s.p50_us),
        static_cast<unsigned long long>(s.p99_us), s.hit_ratio);
    JsonRow row;
    row.phase = "trace_ablation";
    row.load = set.load;
    row.workers = workers;
    row.qps = s.qps;
    row.hit_ratio = s.hit_ratio;
    row.pool_hits = s.pool_hits;
    row.has_latency = true;
    row.p50_us = s.p50_us;
    row.p99_us = s.p99_us;
    row.has_rel = true;
    row.rel_qps = rel;
    rows.push_back(row);
  }
  return rows;
}

/// Network loopback phase: the mixed SELECT workload of the plan-cache
/// phase, but submitted by real wire-protocol clients over 127.0.0.1 —
/// N blocking connections multiplexed onto the shared worker pool by the
/// poll-driven server. Every query crosses encode → TCP → decode → admission
/// → service → result-set encode → client decode, so the reported qps is
/// end-to-end protocol throughput and the latency percentiles come from the
/// server's net_request_us histogram (receive-to-flush per request).
/// Clients share one recycler pool, so the hit ratio measures
/// cross-connection intermediate reuse — the paper's multi-user scenario
/// over an actual socket.
JsonRow RunNetLoopbackPhase(Catalog* cat, int workers, int n_clients,
                            int queries_per_client) {
  QueryService svc(cat, BenchConfig(workers));
  net::NetConfig ncfg;
  ncfg.port = 0;  // ephemeral
  net::RecycleServer server(&svc, ncfg);
  Status st = server.Start();
  if (!st.ok()) {
    std::fprintf(stderr, "net server start failed: %s\n",
                 st.ToString().c_str());
    std::abort();
  }

  // Deterministic literal pools (no shared RNG across client threads): 12
  // distinct query texts over 3 fingerprints, so both the plan cache and
  // the recycle pool see heavy inter-connection commonality.
  auto sql_for = [](int i) -> std::string {
    int y = 1993 + (i % 4);
    switch (i % 3) {
      case 0:
        return StrFormat(
            "select count(*) from orders where o_orderdate >= date "
            "'%d-01-01'",
            y);
      case 1:
        return StrFormat(
            "select o_orderpriority, count(*) from orders where o_orderdate "
            "between date '%d-01-01' and date '%d-06-01' "
            "group by o_orderpriority",
            y, y);
      default:
        return StrFormat(
            "select sum(o_totalprice) from orders where o_orderdate >= "
            "date '%d-01-01'",
            y);
    }
  };

  net::ClientConfig ccfg;
  ccfg.port = server.port();

  // Warm one connection through every distinct text, then measure from a
  // clean window: the timed clients should hit the shared pool, not pay
  // first-compile and first-execute costs.
  {
    net::Client warm;
    st = warm.Connect(ccfg);
    if (!st.ok()) {
      std::fprintf(stderr, "warm connect failed: %s\n", st.ToString().c_str());
      std::abort();
    }
    for (int i = 0; i < 12; ++i) {
      auto r = warm.Query(sql_for(i));
      if (!r.ok()) {
        std::fprintf(stderr, "warm query failed: %s\n",
                     r.status().ToString().c_str());
        std::abort();
      }
    }
    warm.Close();
  }
  svc.recycler().ResetStats();
  obs::LatencyHistogram* req = svc.metrics().FindHistogram("net_request_us");
  req->Reset();

  std::atomic<int> failed{0};
  StopWatch sw;
  std::vector<std::thread> clients;
  clients.reserve(n_clients);
  for (int t = 0; t < n_clients; ++t) {
    clients.emplace_back([&, t] {
      net::Client c;
      if (!c.Connect(ccfg).ok()) {
        failed.fetch_add(queries_per_client);
        return;
      }
      for (int i = 0; i < queries_per_client; ++i) {
        auto r = c.Query(sql_for(t + i));
        if (!r.ok()) failed.fetch_add(1);
      }
      c.Close();
    });
  }
  for (auto& th : clients) th.join();
  double secs = sw.ElapsedSeconds();
  server.Stop();
  if (failed.load() != 0) {
    std::fprintf(stderr, "net loopback: %d request(s) failed\n", failed.load());
    std::abort();
  }

  int total = n_clients * queries_per_client;
  RecyclerStats rs = svc.recycler().stats();
  obs::LatencyHistogram::Snapshot hist = req->snapshot();
  std::printf("net loopback (%d workers, %d clients x %d queries)\n", workers,
              n_clients, queries_per_client);
  std::printf(
      "  qps=%.1f  p50=%lluus p99=%lluus  hit-ratio=%.2f pool-hits=%llu\n",
      total / secs, static_cast<unsigned long long>(hist.Percentile(50)),
      static_cast<unsigned long long>(hist.Percentile(99)),
      rs.monitored ? static_cast<double>(rs.hits) / rs.monitored : 0.0,
      static_cast<unsigned long long>(rs.hits));

  JsonRow row;
  row.phase = "net_loopback";
  row.load = "mixed";
  row.workers = workers;
  row.qps = total / secs;
  row.hit_ratio =
      rs.monitored ? static_cast<double>(rs.hits) / rs.monitored : 0.0;
  row.pool_hits = rs.hits;
  row.has_latency = true;
  row.p50_us = hist.Percentile(50);
  row.p99_us = hist.Percentile(99);
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path;
  std::string metrics_path;
  for (int i = 1; i < argc; ++i) {
    std::string a = argv[i];
    if (a == "--json" && i + 1 < argc) {
      json_path = argv[++i];
    } else if (a.rfind("--json=", 0) == 0) {
      json_path = a.substr(7);
    } else if (a == "--metrics" && i + 1 < argc) {
      metrics_path = argv[++i];
    } else if (a.rfind("--metrics=", 0) == 0) {
      metrics_path = a.substr(10);
    } else {
      std::fprintf(stderr, "usage: %s [--json <path>] [--metrics <path>]\n",
                   argv[0]);
      return 2;
    }
  }

  auto cat = MakeTpchDb(EnvSf());
  std::vector<tpch::QueryTemplate> templates;
  for (int qn : {4, 11, 12, 18, 19}) templates.push_back(tpch::BuildQuery(qn));

  std::vector<Workload> workloads;
  workloads.push_back(MakeWorkload("hot ", templates, 2, 2000, 7001));
  workloads.push_back(MakeWorkload("cold", templates, 0, 400, 7002));

  int max_workers = EnvMaxWorkers();
  std::printf("concurrent throughput, best of 3 reps, hw threads=%u\n",
              std::thread::hardware_concurrency());
  std::printf("%-5s %8s %10s %9s %10s %10s\n", "load", "workers", "qps",
              "speedup", "hit-ratio", "pool-hits");
  PrintRule(60);

  std::vector<JsonRow> rows;
  double hot_1w = 0, hot_4w = 0;
  for (const Workload& w : workloads) {
    std::printf("%-5s (%zu queries/run)\n", w.name, w.queries.size());
    double base_qps = 0;
    for (int workers = 1; workers <= max_workers; workers *= 2) {
      Sample s = RunConfig(cat.get(), w, workers);
      if (workers == 1) base_qps = s.qps;
      if (w.name[0] == 'h') {
        if (workers == 1) hot_1w = s.qps;
        if (workers == 4) hot_4w = s.qps;
      }
      std::printf("%-5s %8d %10.1f %8.2fx %9.2f %10llu\n", w.name, workers,
                  s.qps, s.qps / base_qps, s.hit_ratio,
                  static_cast<unsigned long long>(s.pool_hits));
      JsonRow row;
      row.phase = "throughput";
      row.load = w.name[0] == 'h' ? "hot" : "cold";
      row.workers = workers;
      row.qps = s.qps;
      row.hit_ratio = s.hit_ratio;
      row.pool_hits = s.pool_hits;
      row.has_latency = true;
      row.p50_us = s.p50_us;
      row.p99_us = s.p99_us;
      rows.push_back(row);
    }
    PrintRule(60);
  }

  if (hot_1w > 0 && hot_4w > 0) {
    std::printf("hot workload, 4 vs 1 workers: %.2fx throughput %s\n",
                hot_4w / hot_1w,
                hot_4w / hot_1w > 1.5 ? "(scales)" : "(NOT scaling)");
  }
  rows.push_back(RunPlanCachePhase(cat.get(), std::min(4, max_workers), 500));
  // 12 rounds x 600 selects keeps the timed window comparable to the other
  // gated phases (short windows make the qps gate flake-prone).
  rows.push_back(
      RunMixedDmlPhase(std::min(4, max_workers), 12, 600, metrics_path));
  rows.push_back(RunBoundedMemoryPhase(cat.get(), templates,
                                       std::min(4, max_workers), 1500));
  rows.push_back(RunBoundedMemoryEncodedPhase(templates,
                                              std::min(4, max_workers), 1500));
  for (JsonRow& r : RunKernelPhases()) rows.push_back(std::move(r));
  for (JsonRow& r : RunTraceAblationPhase(cat.get(), templates,
                                          std::min(4, max_workers), 1500))
    rows.push_back(std::move(r));
  rows.push_back(
      RunNetLoopbackPhase(cat.get(), std::min(4, max_workers), 4, 150));
  for (JsonRow& r : RunMvccMixedPhase(std::min(4, max_workers), 150, 4000))
    rows.push_back(std::move(r));
  rows.push_back(
      RunTxnMixedPhase(std::min(4, max_workers), /*n_writers=*/3,
                       /*rounds=*/40, /*selects_per_round=*/60));

  if (!json_path.empty()) {
    WriteJson(json_path, EnvSf(), max_workers,
              BenchConfig(1).recycler.pool_stripes, rows);
    std::printf("wrote %s\n", json_path.c_str());
  }

  if (std::thread::hardware_concurrency() < 4) {
    std::printf(
        "note: this host exposes %u hardware thread(s); worker counts above\n"
        "that measure lock/queue overhead only — parallel speedup needs a\n"
        "multi-core host.\n",
        std::thread::hardware_concurrency());
  }
  return 0;
}
