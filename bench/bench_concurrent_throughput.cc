// Concurrent query service throughput: sweeps worker counts × workload heat
// (hot = few distinct parameter vectors, so the shared pool answers most
// monitored instructions; cold = fresh parameters every query) and reports
// queries/second, speedup over one worker, and the shared-pool hit ratio.
//
// The point: one pool + the shared_mutex protocol scales instead of
// serialising — misses execute outside any lock, and hot workloads get both
// reuse (less work per query) and parallelism across workers.
//
//   ./bench_concurrent_throughput            # SF from RDB_TPCH_SF (0.01)
//   RDB_MAX_WORKERS=16 ./bench_concurrent_throughput
//   ./bench_concurrent_throughput --json BENCH_concurrent.json
//
// --json writes every sample as machine-readable JSON for the CI
// benchmark-regression harness (bench/check_regression.py compares it
// against bench/baseline/BENCH_concurrent.json).

#include <fstream>

#include "bench/bench_common.h"
#include "server/query_service.h"
#include "util/str.h"

using namespace recycledb;         // NOLINT
using namespace recycledb::bench;  // NOLINT

namespace {

struct Workload {
  const char* name;
  std::vector<QueryRequest> queries;          // timed
  std::vector<QueryRequest> warmup;           // distinct shapes, untimed
};

/// Builds a workload over the given templates. `distinct_params` > 0 draws
/// every timed query from that many pre-warmed parameter vectors per
/// template (hot: the pool answers nearly everything); 0 gives every timed
/// query fresh parameters the warmup never saw (cold: only the
/// parameter-independent plan prefixes can hit).
Workload MakeWorkload(const char* name,
                      const std::vector<tpch::QueryTemplate>& templates,
                      int distinct_params, int n, uint64_t seed) {
  Rng rng(seed);
  Workload w;
  w.name = name;
  std::vector<std::vector<std::vector<Scalar>>> params(templates.size());
  for (size_t t = 0; t < templates.size(); ++t) {
    int warm = distinct_params > 0 ? distinct_params : 1;
    for (int p = 0; p < warm; ++p) {
      params[t].push_back(templates[t].gen_params(rng));
      w.warmup.push_back({&templates[t].prog, params[t][p]});
    }
  }
  for (int i = 0; i < n; ++i) {
    size_t t = i % templates.size();
    std::vector<Scalar> p = distinct_params > 0
                                ? params[t][rng.Uniform(distinct_params)]
                                : templates[t].gen_params(rng);
    w.queries.push_back({&templates[t].prog, std::move(p)});
  }
  return w;
}

struct Sample {
  double qps = 0;
  double hit_ratio = 0;
  uint64_t pool_hits = 0;
};

/// One row of the machine-readable output (--json): either a throughput
/// sample (phase="throughput", load hot/cold) or the SQL plan-cache phase
/// (phase="sql_plan_cache"). check_regression.py keys rows by
/// (phase, load, workers).
struct JsonRow {
  std::string phase;
  std::string load;
  int workers = 0;
  double qps = 0;
  double hit_ratio = 0;
  uint64_t pool_hits = 0;
  // sql_plan_cache only:
  uint64_t plan_compiles = 0;
  uint64_t plan_hits = 0;
  uint64_t plan_lookups = 0;
};

void WriteJson(const std::string& path, double sf, int max_workers,
               size_t stripes, const std::vector<JsonRow>& rows) {
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    std::abort();
  }
  out << "{\n";
  out << StrFormat(
      "  \"config\": {\"sf\": %g, \"max_workers\": %d, \"stripes\": %zu, "
      "\"hw_threads\": %u},\n",
      sf, max_workers, stripes, std::thread::hardware_concurrency());
  out << "  \"results\": [\n";
  for (size_t i = 0; i < rows.size(); ++i) {
    const JsonRow& r = rows[i];
    out << StrFormat(
        "    {\"phase\": \"%s\", \"load\": \"%s\", \"workers\": %d, "
        "\"qps\": %.2f, \"hit_ratio\": %.4f, \"pool_hits\": %llu",
        r.phase.c_str(), r.load.c_str(), r.workers, r.qps, r.hit_ratio,
        static_cast<unsigned long long>(r.pool_hits));
    if (r.phase == "sql_plan_cache") {
      out << StrFormat(
          ", \"plan_compiles\": %llu, \"plan_hits\": %llu, "
          "\"plan_lookups\": %llu",
          static_cast<unsigned long long>(r.plan_compiles),
          static_cast<unsigned long long>(r.plan_hits),
          static_cast<unsigned long long>(r.plan_lookups));
    }
    out << (i + 1 < rows.size() ? "},\n" : "}\n");
  }
  out << "  ]\n}\n";
}

/// The one service configuration every phase runs with (worker count set
/// per phase) — also the source of truth for the config block in --json.
ServiceConfig BenchConfig(int workers) {
  ServiceConfig cfg;
  cfg.num_workers = workers;
  return cfg;
}

Sample RunConfig(Catalog* cat, const Workload& w, int workers) {
  QueryService svc(cat, BenchConfig(workers));

  // Short runs are noisy, so take the best of a few repetitions. Each rep
  // restores the same starting state: an empty pool re-warmed with the
  // workload's distinct shapes (steady-state serving, §7 preparation
  // analogue) — otherwise a cold rep would leave its admissions behind and
  // turn the next rep hot.
  Sample s;
  for (int rep = 0; rep < 3; ++rep) {
    svc.recycler().Clear();
    for (auto& r : svc.RunBatch(w.warmup)) {
      if (!r.ok()) {
        std::fprintf(stderr, "warmup failed: %s\n",
                     r.status().ToString().c_str());
        std::abort();
      }
    }
    svc.recycler().ResetStats();
    StopWatch sw;
    std::vector<Result<QueryResult>> results = svc.RunBatch(w.queries);
    double secs = sw.ElapsedSeconds();
    for (auto& r : results) {
      if (!r.ok()) {
        std::fprintf(stderr, "query failed: %s\n",
                     r.status().ToString().c_str());
        std::abort();
      }
    }
    double qps = static_cast<double>(w.queries.size()) / secs;
    if (qps > s.qps) {
      s.qps = qps;
      RecyclerStats rs = svc.recycler().stats();
      s.hit_ratio =
          rs.monitored ? static_cast<double>(rs.hits) / rs.monitored : 0.0;
      s.pool_hits = rs.hits;
    }
  }
  return s;
}

int EnvMaxWorkers(int def = 8) {
  const char* v = std::getenv("RDB_MAX_WORKERS");
  if (v == nullptr) return def;
  int n = std::atoi(v);
  return n < 1 ? def : n;  // unparsable/zero: fall back to the default
}

/// Mixed ad-hoc SQL workload through SubmitSql: a handful of TPC-H-style
/// query patterns, each instantiated with literals drawn from small pools.
/// Every line is distinct text, but normalisation maps it onto one of a few
/// fingerprints — the compile-once, share-everywhere behaviour the plan
/// cache exists for (compiles ≪ submissions), feeding the recycler the same
/// inter-query commonality the hand-built templates have.
JsonRow RunSqlPlanCachePhase(Catalog* cat, int workers, int n_queries) {
  QueryService svc(cat, BenchConfig(workers));
  Rng rng(4242);

  auto query = [&](int pattern) -> std::string {
    int y = 1993 + static_cast<int>(rng.Uniform(4));
    switch (pattern) {
      case 0:  // Q6-style: fully parameter dependent
        return StrFormat(
            "select sum(l_extendedprice * l_discount) from lineitem "
            "where l_shipdate >= date '%d-01-01' and l_shipdate < date "
            "'%d-01-01' and l_discount between %.2f and %.2f and "
            "l_quantity < %d",
            y, y + 1, 0.02 + 0.01 * rng.Uniform(3),
            0.05 + 0.01 * rng.Uniform(3), 24 + static_cast<int>(rng.Uniform(2)));
      case 1:  // Q1-style: grouped aggregation
        return StrFormat(
            "select l_returnflag, l_linestatus, sum(l_quantity), count(*) "
            "from lineitem where l_shipdate <= date '1998-%02d-01' "
            "group by l_returnflag, l_linestatus",
            1 + static_cast<int>(rng.Uniform(12)));
      case 2:  // Q18 prefix: no literals at all — fully recyclable
        return "select l_orderkey, sum(l_quantity) from lineitem "
               "group by l_orderkey limit 10";
      case 3:  // FK join through the li_orders index
        return StrFormat(
            "select count(*) from lineitem inner join orders "
            "on l_orderkey = o_orderkey where o_orderdate >= date "
            "'%d-01-01' and o_orderdate < date '%d-07-01'",
            y, y);
      default:  // order-priority histogram over a quarter
        return StrFormat(
            "select o_orderpriority, count(*) from orders where o_orderdate "
            "between date '%d-01-01' and date '%d-03-01' "
            "group by o_orderpriority",
            y, y);
    }
  };

  StopWatch sw;
  std::vector<std::future<Result<QueryResult>>> futs;
  futs.reserve(n_queries);
  for (int i = 0; i < n_queries; ++i) futs.push_back(svc.SubmitSql(query(i % 5)));
  for (auto& f : futs) {
    auto r = f.get();
    if (!r.ok()) {
      std::fprintf(stderr, "sql query failed: %s\n",
                   r.status().ToString().c_str());
      std::abort();
    }
  }
  double secs = sw.ElapsedSeconds();

  ServiceStats s = svc.stats();
  RecyclerStats rs = svc.recycler().stats();
  std::printf("SQL plan cache (%d workers, 5 patterns, %d submissions)\n",
              workers, n_queries);
  std::printf(
      "  qps=%.1f  compiles=%llu  plan-hits=%llu  invalidations=%llu  "
      "(compiles/submissions = %.1f%%)\n",
      n_queries / secs, static_cast<unsigned long long>(s.plan_compiles),
      static_cast<unsigned long long>(s.plan_hits),
      static_cast<unsigned long long>(s.plan_invalidations),
      100.0 * static_cast<double>(s.plan_compiles) /
          static_cast<double>(s.plan_lookups));
  std::printf(
      "  recycler: monitored=%llu pool-hits=%llu (hit ratio %.2f)\n",
      static_cast<unsigned long long>(rs.monitored),
      static_cast<unsigned long long>(rs.hits),
      rs.monitored ? static_cast<double>(rs.hits) / rs.monitored : 0.0);

  JsonRow row;
  row.phase = "sql_plan_cache";
  row.load = "mixed";
  row.workers = workers;
  row.qps = n_queries / secs;
  row.hit_ratio =
      rs.monitored ? static_cast<double>(rs.hits) / rs.monitored : 0.0;
  row.pool_hits = rs.hits;
  row.plan_compiles = s.plan_compiles;
  row.plan_hits = s.plan_hits;
  row.plan_lookups = s.plan_lookups;
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    std::string a = argv[i];
    if (a == "--json" && i + 1 < argc) {
      json_path = argv[++i];
    } else if (a.rfind("--json=", 0) == 0) {
      json_path = a.substr(7);
    } else {
      std::fprintf(stderr, "usage: %s [--json <path>]\n", argv[0]);
      return 2;
    }
  }

  auto cat = MakeTpchDb(EnvSf());
  std::vector<tpch::QueryTemplate> templates;
  for (int qn : {4, 11, 12, 18, 19}) templates.push_back(tpch::BuildQuery(qn));

  std::vector<Workload> workloads;
  workloads.push_back(MakeWorkload("hot ", templates, 2, 2000, 7001));
  workloads.push_back(MakeWorkload("cold", templates, 0, 400, 7002));

  int max_workers = EnvMaxWorkers();
  std::printf("concurrent throughput, best of 3 reps, hw threads=%u\n",
              std::thread::hardware_concurrency());
  std::printf("%-5s %8s %10s %9s %10s %10s\n", "load", "workers", "qps",
              "speedup", "hit-ratio", "pool-hits");
  PrintRule(60);

  std::vector<JsonRow> rows;
  double hot_1w = 0, hot_4w = 0;
  for (const Workload& w : workloads) {
    std::printf("%-5s (%zu queries/run)\n", w.name, w.queries.size());
    double base_qps = 0;
    for (int workers = 1; workers <= max_workers; workers *= 2) {
      Sample s = RunConfig(cat.get(), w, workers);
      if (workers == 1) base_qps = s.qps;
      if (w.name[0] == 'h') {
        if (workers == 1) hot_1w = s.qps;
        if (workers == 4) hot_4w = s.qps;
      }
      std::printf("%-5s %8d %10.1f %8.2fx %9.2f %10llu\n", w.name, workers,
                  s.qps, s.qps / base_qps, s.hit_ratio,
                  static_cast<unsigned long long>(s.pool_hits));
      JsonRow row;
      row.phase = "throughput";
      row.load = w.name[0] == 'h' ? "hot" : "cold";
      row.workers = workers;
      row.qps = s.qps;
      row.hit_ratio = s.hit_ratio;
      row.pool_hits = s.pool_hits;
      rows.push_back(row);
    }
    PrintRule(60);
  }

  if (hot_1w > 0 && hot_4w > 0) {
    std::printf("hot workload, 4 vs 1 workers: %.2fx throughput %s\n",
                hot_4w / hot_1w,
                hot_4w / hot_1w > 1.5 ? "(scales)" : "(NOT scaling)");
  }
  rows.push_back(RunSqlPlanCachePhase(cat.get(), std::min(4, max_workers), 500));

  if (!json_path.empty()) {
    WriteJson(json_path, EnvSf(), max_workers,
              BenchConfig(1).recycler.pool_stripes, rows);
    std::printf("wrote %s\n", json_path.c_str());
  }

  if (std::thread::hardware_concurrency() < 4) {
    std::printf(
        "note: this host exposes %u hardware thread(s); worker counts above\n"
        "that measure lock/queue overhead only — parallel speedup needs a\n"
        "multi-core host.\n",
        std::thread::hardware_concurrency());
  }
  return 0;
}
