// Reproduces Table III: the recycle-pool content after the SkyServer
// 100-query batch under KEEPALL/unlimited. Per instruction type: number of
// cache lines, memory, average computation time, reused cache lines, total
// reuses, and average time saved per reuse. Also reports the paper's
// headline: the fraction of monitored instructions successfully reused.

#include <map>

#include "bench/bench_common.h"

using namespace recycledb;        // NOLINT
using namespace recycledb::bench; // NOLINT

int main() {
  auto cat = MakeSkyDb(EnvSkyObjects());
  Recycler rec;
  Interpreter interp(cat.get(), &rec);

  Program cone = skyserver::BuildConeSearchTemplate();
  Program doc = skyserver::BuildDocQueryTemplate();
  Program point = skyserver::BuildPointQueryTemplate();
  skyserver::SkyConfig cfg;
  cfg.n_objects = EnvSkyObjects();
  skyserver::SkyLogSampler sampler(cfg, 2024);

  // Warm up, then empty the pool (§8 preparation).
  MustRun(&interp, cone,
          {Scalar::Dbl(0), Scalar::Dbl(5), Scalar::Dbl(0), Scalar::Dbl(5)});
  rec.Clear();

  const int kBatch = 100;
  for (int i = 0; i < kBatch; ++i) {
    skyserver::SkyQuery q = sampler.Next();
    const Program& prog = q.kind == 0 ? cone : (q.kind == 1 ? doc : point);
    MustRun(&interp, prog, q.params);
  }

  struct Row {
    size_t lines = 0;
    size_t bytes = 0;
    double cost_ms = 0;
    size_t reused_lines = 0;
    uint64_t reuses = 0;
    double saved_ms = 0;
  };
  std::map<std::string, Row> rows;
  Row total;
  for (const PoolEntry* e :
       const_cast<const RecyclePool&>(rec.pool()).Entries()) {
    Row& r = rows[OpcodeName(e->op)];
    int uses = e->reuses + e->subsumption_uses;
    r.lines += 1;
    r.bytes += e->owned_bytes;
    r.cost_ms += e->cost_ms;
    r.reused_lines += uses > 0 ? 1 : 0;
    r.reuses += static_cast<uint64_t>(uses);
    r.saved_ms += e->cost_ms * uses;
    total.lines += 1;
    total.bytes += e->owned_bytes;
    total.cost_ms += e->cost_ms;
    total.reused_lines += uses > 0 ? 1 : 0;
    total.reuses += static_cast<uint64_t>(uses);
    total.saved_ms += e->cost_ms * uses;
  }

  std::printf("Table III: recycle pool after the %d-query SkyServer batch\n",
              kBatch);
  std::printf("%-22s %6s %9s %9s %8s %8s %10s\n", "Instruction", "lines",
              "mem(KB)", "avg(ms)", "#reused", "#reuses", "saved(ms)");
  PrintRule(80);
  for (const auto& [name, r] : rows) {
    std::printf("%-22s %6zu %9.1f %9.3f %8zu %8llu %10.1f\n", name.c_str(),
                r.lines, r.bytes / 1024.0,
                r.lines ? r.cost_ms / r.lines : 0, r.reused_lines,
                static_cast<unsigned long long>(r.reuses), r.saved_ms);
  }
  PrintRule(80);
  std::printf("%-22s %6zu %9.1f %9s %8zu %8llu %10.1f\n", "Total", total.lines,
              total.bytes / 1024.0, "", total.reused_lines,
              static_cast<unsigned long long>(total.reuses), total.saved_ms);

  std::printf(
      "\nmonitored executions: %llu, reused: %llu (%.1f%%)\n"
      "RP memory: %.2f MB (persistent data: %.2f MB)\n",
      static_cast<unsigned long long>(rec.stats().monitored),
      static_cast<unsigned long long>(rec.stats().hits),
      100.0 * rec.stats().hits / rec.stats().monitored,
      Mb(rec.pool().total_bytes()), Mb(cat->TotalPersistentBytes()));
  std::printf(
      "\nShape check vs paper: ~95%% of monitored instructions reused; join\n"
      "lines dominate memory and savings; bind/markT lines own no memory.\n");
  return 0;
}
