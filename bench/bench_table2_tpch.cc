// Reproduces Table II: characteristics of the TPC-H queries.
//
// For each query we report the number of instructions marked by the recycler
// optimiser (# col; binds excluded, as in the paper), the percentage of
// marked instructions reused within one instance (Intra) and across
// instances of the same template with different parameters (Inter), the
// total naive execution time, the time potentially saved (time spent in
// monitored instructions), and the measured savings from local and from a
// single global reuse.

#include "bench/bench_common.h"

using namespace recycledb;        // NOLINT
using namespace recycledb::bench; // NOLINT

int main() {
  double sf = EnvSf();
  auto cat = MakeTpchDb(sf);
  std::printf("Table II: characteristics of TPC-H queries (SF %.3f)\n", sf);
  std::printf("%-5s %5s %7s %7s | %9s %9s %9s %9s\n", "Query", "#", "Intra%",
              "Inter%", "Total(ms)", "Pot.(ms)", "Local(ms)", "Glob(ms)");
  PrintRule();

  for (int qn = 1; qn <= 22; ++qn) {
    auto q = tpch::BuildQuery(qn);
    Rng rng(1000 + qn);
    auto p1 = q.gen_params(rng);
    auto p2 = q.gen_params(rng);

    // Count marked instructions excluding binds.
    int marked = 0;
    for (const auto& ins : q.prog.instrs) {
      if (ins.monitored && ins.op != Opcode::kBind &&
          ins.op != Opcode::kBindIdx)
        ++marked;
    }

    // Warm up (touch persistent data), then measure naive runs.
    Interpreter naive(cat.get());
    MustRun(&naive, q.prog, p1);
    double t_naive1 = MustRun(&naive, q.prog, p1).wall_ms;
    double potential = naive.last_run().monitored_exec_ms;
    double t_naive2 = MustRun(&naive, q.prog, p2).wall_ms;

    // Intra: first recycled instance (local reuse only).
    Recycler rec;
    Interpreter interp(cat.get(), &rec);
    double t_rec1 = MustRun(&interp, q.prog, p1).wall_ms;
    uint64_t mon1 = rec.stats().monitored;
    uint64_t local1 = rec.stats().local_hits;
    // Inter: second instance with different parameters.
    uint64_t hits_before = rec.stats().hits;
    double t_rec2 = MustRun(&interp, q.prog, p2).wall_ms;
    uint64_t mon2 = rec.stats().monitored - mon1;
    uint64_t inter = rec.stats().hits - hits_before;

    // Exclude bind hits from the commonality ratios, as the paper does.
    double intra_pct = mon1 ? 100.0 * local1 / static_cast<double>(mon1) : 0;
    double inter_pct = mon2 ? 100.0 * inter / static_cast<double>(mon2) : 0;
    double local_savings = t_naive1 - t_rec1;
    if (local_savings < 0) local_savings = 0;
    double global_savings = t_naive2 - t_rec2;
    if (global_savings < 0) global_savings = 0;

    std::printf("Q%-4d %5d %7.1f %7.1f | %9.2f %9.2f %9.2f %9.2f\n", qn,
                marked, intra_pct, inter_pct, t_naive1, potential,
                local_savings, global_savings);
  }
  PrintRule();
  std::printf("Shape check vs paper: Q4/Q18/Q22 show large Inter%%; Q11/Q19\n"
              "show Intra%%; Q6/Q14 show little of either.\n");
  return 0;
}
