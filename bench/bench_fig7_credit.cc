// Reproduces Figure 7: effect of the CREDIT admission parameter on the hit
// ratio relative to KEEPALL (a), on reused memory % (b), and on reused
// recycle-pool entries % (c), for Q11 (intra), Q18 and Q19 (inter), with
// 10 instances each and unlimited resources.

#include "bench/bench_common.h"

using namespace recycledb;        // NOLINT
using namespace recycledb::bench; // NOLINT

namespace {

struct RunResult {
  uint64_t hits = 0;
  double reused_mem_pct = 0;
  double reused_entries_pct = 0;
};

RunResult RunInstances(Catalog* cat, int qnum, AdmissionKind adm,
                       int credits) {
  auto q = tpch::BuildQuery(qnum);
  Rng rng(40 + qnum);  // identical parameter sequence across policies
  RecyclerConfig cfg;
  cfg.admission = adm;
  cfg.credits = credits;
  Recycler rec(cfg);
  Interpreter interp(cat, &rec);
  for (int i = 0; i < 10; ++i) MustRun(&interp, q.prog, q.gen_params(rng));
  RunResult r;
  r.hits = rec.stats().hits;
  size_t total = rec.pool().total_bytes();
  size_t entries = rec.pool().num_entries();
  r.reused_mem_pct = total ? 100.0 * rec.pool().ReusedBytes() / total : 0;
  r.reused_entries_pct =
      entries ? 100.0 * rec.pool().ReusedEntries() / entries : 0;
  return r;
}

}  // namespace

int main() {
  auto cat = MakeTpchDb(EnvSf());
  const int kQueries[] = {11, 18, 19};

  std::printf("Figure 7: CREDIT admission vs KEEPALL (10 instances each)\n");
  std::printf("%-7s %8s | %9s %10s %10s | %10s %10s\n", "Query", "credits",
              "hit/KA", "mem%%(CRD)", "mem%%(KA)", "ent%%(CRD)", "ent%%(KA)");
  PrintRule(78);

  for (int qn : kQueries) {
    RunResult keepall = RunInstances(cat.get(), qn,
                                     AdmissionKind::kKeepAll, 0);
    for (int credits = 2; credits <= 10; credits += 2) {
      RunResult crd =
          RunInstances(cat.get(), qn, AdmissionKind::kCredit, credits);
      std::printf("Q%-6d %8d | %9.2f %10.1f %10.1f | %10.1f %10.1f\n", qn,
                  credits,
                  keepall.hits ? static_cast<double>(crd.hits) / keepall.hits
                               : 0,
                  crd.reused_mem_pct, keepall.reused_mem_pct,
                  crd.reused_entries_pct, keepall.reused_entries_pct);
    }
    PrintRule(78);
  }
  std::printf(
      "Shape check vs paper: Q11's hit ratio is credit-insensitive (local\n"
      "reuse returns credits); Q18/Q19 hit ratios climb with credits while\n"
      "resource utilisation degrades; CREDIT always reuses a larger\n"
      "fraction of its (smaller) pool than KEEPALL.\n");
  return 0;
}
