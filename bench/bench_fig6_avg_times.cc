// Reproduces Figure 6: average per-instance times for Q11/Q18/Q19/Q14 under
// the naive strategy, the first recycled instance, and the average recycled
// instance (log-scale bar chart in the paper; we print the three series).

#include "bench/bench_common.h"

using namespace recycledb;        // NOLINT
using namespace recycledb::bench; // NOLINT

int main() {
  auto cat = MakeTpchDb(EnvSf());
  const int kQueries[] = {11, 18, 19, 14};
  const int kInstances = 10;

  std::printf("Figure 6: recycler effect on performance (ms per instance)\n");
  std::printf("%-6s %12s %15s %14s\n", "Query", "Naive", "Recycle-first",
              "Recycle-avg");
  PrintRule(52);

  for (int qn : kQueries) {
    auto q = tpch::BuildQuery(qn);
    Rng rng(900 + qn);
    Interpreter naive(cat.get());
    Recycler rec;
    Interpreter interp(cat.get(), &rec);
    MustRun(&naive, q.prog, q.gen_params(rng));  // warm-up
    rec.Clear();

    double naive_total = 0, rec_first = 0, rec_rest = 0;
    for (int i = 0; i < kInstances; ++i) {
      auto params = q.gen_params(rng);
      naive_total += MustRun(&naive, q.prog, params).wall_ms;
      double t = MustRun(&interp, q.prog, params).wall_ms;
      if (i == 0)
        rec_first = t;
      else
        rec_rest += t;
    }
    std::printf("Q%-5d %12.2f %15.2f %14.2f\n", qn, naive_total / kInstances,
                rec_first, rec_rest / (kInstances - 1));
  }
  PrintRule(52);
  std::printf(
      "Shape check vs paper: Q18 drops by orders of magnitude after the\n"
      "first instance; Q11/Q19 improve moderately; Q14's recycled average\n"
      "matches naive (overhead only).\n");
  return 0;
}
